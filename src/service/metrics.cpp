#include "service/metrics.h"

#include <algorithm>

#include "telemetry/prometheus.h"

namespace pviz::service {

ServiceMetrics::ServiceMetrics() : start_(std::chrono::steady_clock::now()) {
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const telemetry::Labels labels = {{"op", opToken(static_cast<Op>(i))}};
    OpInstruments& inst = perOp_[i];
    inst.requests = &registry_.counter("pviz_requests_total", labels,
                                       "Completed requests per operation");
    inst.errors = &registry_.counter("pviz_request_errors_total", labels,
                                     "Requests answered with status=error");
    inst.cacheHits =
        &registry_.counter("pviz_request_cache_hits_total", labels,
                           "Requests served from the result cache");
    inst.latencyMs = &registry_.histogram(
        "pviz_request_latency_ms", labels,
        "Request service latency in milliseconds");
  }
  overloaded_ = &registry_.counter("pviz_overloaded_total", {},
                                   "Admission-control rejections");
  badRequests_ = &registry_.counter("pviz_bad_requests_total", {},
                                    "Frames that did not parse to a request");
  timeouts_ = &registry_.counter("pviz_timeouts_total", {},
                                 "Connection/request deadline violations");
  cancelled_ = &registry_.counter("pviz_cancelled_total", {},
                                  "Kernels stopped mid-run by cancellation");
  rejectedFrames_ = &registry_.counter(
      "pviz_rejected_frames_total", {}, "Frames over the size bound");
  shedConnections_ = &registry_.counter(
      "pviz_shed_connections_total", {}, "Connections shed at accept time");
  claimsGranted_ = &registry_.counter(
      "pviz_claims_granted_total", {}, "Fleet work-unit claims granted");
  claimsDeclined_ = &registry_.counter(
      "pviz_claims_declined_total", {},
      "Fleet work-unit claims declined under load");
  connectionsAccepted_ = &registry_.counter(
      "pviz_connections_accepted_total", {}, "Connections accepted");
  connectionsActive_ = &registry_.gauge("pviz_connections_active", {},
                                        "Currently open connections");
  queueDepth_ =
      &registry_.gauge("pviz_queue_depth", {}, "Request queue depth");
  maxQueueDepth_ = &registry_.gauge("pviz_queue_depth_max", {},
                                    "Request queue depth high-water mark");
  uptimeMs_ = &registry_.gauge("pviz_uptime_ms", {},
                               "Milliseconds since server start");
  cacheHitsG_ = &registry_.gauge("pviz_result_cache_hits", {},
                                 "Result cache hits");
  cacheMissesG_ = &registry_.gauge("pviz_result_cache_misses", {},
                                   "Result cache misses");
  cacheInsertionsG_ = &registry_.gauge("pviz_result_cache_insertions", {},
                                       "Result cache insertions");
  cacheEvictionsG_ = &registry_.gauge("pviz_result_cache_evictions", {},
                                      "Result cache evictions");
  cacheEntriesG_ = &registry_.gauge("pviz_result_cache_entries", {},
                                    "Result cache live entries");
  cacheBytesG_ = &registry_.gauge("pviz_result_cache_bytes", {},
                                  "Result cache resident bytes");
}

void ServiceMetrics::recordRequest(Op op, double latencyMs, bool cached,
                                   bool error) {
  OpInstruments& inst = perOp_[static_cast<std::size_t>(op)];
  inst.requests->inc();
  if (error) inst.errors->inc();
  if (cached) inst.cacheHits->inc();
  inst.latencyMs->record(latencyMs);
}

void ServiceMetrics::recordOverloaded() { overloaded_->inc(); }
void ServiceMetrics::recordBadRequest() { badRequests_->inc(); }
void ServiceMetrics::recordTimeout() { timeouts_->inc(); }
void ServiceMetrics::recordCancelled() { cancelled_->inc(); }
void ServiceMetrics::recordRejectedFrame() { rejectedFrames_->inc(); }
void ServiceMetrics::recordShedConnection() { shedConnections_->inc(); }

void ServiceMetrics::recordClaim(bool granted) {
  (granted ? claimsGranted_ : claimsDeclined_)->inc();
}

void ServiceMetrics::connectionOpened() {
  connectionsAccepted_->inc();
  connectionsActive_->add(1.0);
}

void ServiceMetrics::connectionClosed() { connectionsActive_->add(-1.0); }

void ServiceMetrics::recordQueueDepth(std::size_t depth) {
  queueDepth_->set(static_cast<double>(depth));
  maxQueueDepth_->ratchetMax(static_cast<double>(depth));
}

ServiceMetrics::Snapshot ServiceMetrics::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    const OpInstruments& inst = perOp_[i];
    OpSnapshot& s = snap.perOp[i];
    s.requests = inst.requests->value();
    s.errors = inst.errors->value();
    s.cacheHits = inst.cacheHits->value();
    const telemetry::Histogram::Snapshot lat = inst.latencyMs->snapshot();
    s.meanLatencyMs = lat.mean();
    s.maxLatencyMs = lat.maxValue;
    s.p50LatencyMs = lat.percentile(0.50);
    s.p95LatencyMs = lat.percentile(0.95);
    s.p99LatencyMs = lat.percentile(0.99);
    snap.totalRequests += s.requests;
  }
  snap.overloaded = overloaded_->value();
  snap.badRequests = badRequests_->value();
  snap.timeouts = timeouts_->value();
  snap.cancelled = cancelled_->value();
  snap.rejectedFrames = rejectedFrames_->value();
  snap.shedConnections = shedConnections_->value();
  snap.claimsGranted = claimsGranted_->value();
  snap.claimsDeclined = claimsDeclined_->value();
  snap.queueDepth = static_cast<std::size_t>(queueDepth_->value());
  snap.maxQueueDepth = static_cast<std::size_t>(maxQueueDepth_->value());
  snap.connectionsAccepted = connectionsAccepted_->value();
  snap.connectionsActive =
      static_cast<std::size_t>(std::max(connectionsActive_->value(), 0.0));
  snap.uptimeMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  return snap;
}

Json ServiceMetrics::toJson(const Snapshot& snapshot,
                            const ResultCache::Stats& cache) {
  Json ops = Json::object();
  for (std::size_t i = 0; i < snapshot.perOp.size(); ++i) {
    const OpSnapshot& s = snapshot.perOp[i];
    if (s.requests == 0) continue;
    Json op = Json::object();
    op.set("requests", static_cast<double>(s.requests));
    op.set("errors", static_cast<double>(s.errors));
    op.set("cache_hits", static_cast<double>(s.cacheHits));
    op.set("mean_latency_ms", s.meanLatencyMs);
    op.set("max_latency_ms", s.maxLatencyMs);
    op.set("p50_latency_ms", s.p50LatencyMs);
    op.set("p95_latency_ms", s.p95LatencyMs);
    op.set("p99_latency_ms", s.p99LatencyMs);
    ops.set(opToken(static_cast<Op>(i)), std::move(op));
  }

  Json cacheJson = Json::object();
  cacheJson.set("hits", static_cast<double>(cache.hits));
  cacheJson.set("misses", static_cast<double>(cache.misses));
  cacheJson.set("insertions", static_cast<double>(cache.insertions));
  cacheJson.set("evictions", static_cast<double>(cache.evictions));
  cacheJson.set("entries", static_cast<double>(cache.entries));
  cacheJson.set("bytes", static_cast<double>(cache.bytes));

  Json out = Json::object();
  out.set("uptime_ms", snapshot.uptimeMs);
  out.set("total_requests", static_cast<double>(snapshot.totalRequests));
  out.set("overloaded", static_cast<double>(snapshot.overloaded));
  out.set("bad_requests", static_cast<double>(snapshot.badRequests));
  out.set("timeouts", static_cast<double>(snapshot.timeouts));
  out.set("cancelled", static_cast<double>(snapshot.cancelled));
  out.set("rejected_frames", static_cast<double>(snapshot.rejectedFrames));
  out.set("shed_connections", static_cast<double>(snapshot.shedConnections));
  out.set("claims_granted", static_cast<double>(snapshot.claimsGranted));
  out.set("claims_declined", static_cast<double>(snapshot.claimsDeclined));
  out.set("queue_depth", static_cast<double>(snapshot.queueDepth));
  out.set("max_queue_depth", static_cast<double>(snapshot.maxQueueDepth));
  out.set("connections_accepted",
          static_cast<double>(snapshot.connectionsAccepted));
  out.set("connections_active",
          static_cast<double>(snapshot.connectionsActive));
  out.set("ops", std::move(ops));
  out.set("cache", std::move(cacheJson));
  return out;
}

std::string ServiceMetrics::prometheusText(const ResultCache::Stats& cache) {
  uptimeMs_->set(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count());
  cacheHitsG_->set(static_cast<double>(cache.hits));
  cacheMissesG_->set(static_cast<double>(cache.misses));
  cacheInsertionsG_->set(static_cast<double>(cache.insertions));
  cacheEvictionsG_->set(static_cast<double>(cache.evictions));
  cacheEntriesG_->set(static_cast<double>(cache.entries));
  cacheBytesG_->set(static_cast<double>(cache.bytes));
  return telemetry::renderPrometheus(registry_);
}

}  // namespace pviz::service
