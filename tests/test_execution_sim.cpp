// Execution simulator tests: kernels replayed on the modeled package
// under RAPL caps.
#include <gtest/gtest.h>

#include "core/execution_sim.h"

namespace pviz::core {
namespace {

vis::KernelProfile computeBound() {
  vis::KernelProfile k;
  k.kernel = "compute";
  k.elements = 1000000;
  vis::WorkProfile& p = k.addPhase("hot");
  p.flops = 4e10;
  p.intOps = 1.5e10;
  p.memOps = 1e10;
  p.bytesReused = 5e8;
  p.workingSetBytes = 1e6;
  p.parallelFraction = 0.99;
  p.overlap = 0.7;
  return k;
}

vis::KernelProfile memoryBound() {
  vis::KernelProfile k;
  k.kernel = "memory";
  k.elements = 1000000;
  vis::WorkProfile& p = k.addPhase("stream");
  p.flops = 5e8;
  p.intOps = 2e9;
  p.memOps = 2e9;
  p.bytesStreamed = 3e10;
  p.parallelFraction = 0.99;
  p.overlap = 0.9;
  return k;
}

TEST(ExecutionSim, UncappedRunMatchesCostModelAtTurbo) {
  ExecutionSimulator sim;
  const auto kernel = computeBound();
  const Measurement m = sim.run(kernel, 120.0);
  const arch::KernelCost reference =
      sim.costModel().kernelCost(kernel, sim.machine().turboAllCoreGhz);
  EXPECT_NEAR(m.seconds, reference.seconds, reference.seconds * 0.02);
  EXPECT_NEAR(m.effectiveGhz, sim.machine().turboAllCoreGhz, 0.01);
}

TEST(ExecutionSim, EnergyEqualsPowerTimesTime) {
  ExecutionSimulator sim;
  const Measurement m = sim.run(memoryBound(), 100.0);
  EXPECT_NEAR(m.energyJoules, m.averageWatts * m.seconds,
              m.energyJoules * 1e-9);
  EXPECT_GT(m.energyJoules, 0.0);
}

TEST(ExecutionSim, MeteredPowerAgreesWithAccountedPower) {
  ExecutionSimulator sim;
  // A long kernel gets plenty of 100 ms samples.
  const Measurement m = sim.run(repeatKernel(memoryBound(), 20), 120.0);
  ASSERT_GT(m.powerTrace.size(), 5u);
  EXPECT_NEAR(m.meteredWatts, m.averageWatts, m.averageWatts * 0.05);
}

TEST(ExecutionSim, CapThrottlesComputeKernels) {
  ExecutionSimulator sim;
  const auto kernel = computeBound();
  const Measurement free = sim.run(kernel, 120.0);
  const Measurement capped = sim.run(kernel, 50.0);
  EXPECT_LT(capped.effectiveGhz, free.effectiveGhz - 0.3);
  EXPECT_GT(capped.seconds, free.seconds * 1.2);
  // The cap is honored (within the stepwise controller's settle band).
  EXPECT_LE(capped.averageWatts, 53.0);
}

TEST(ExecutionSim, MemoryKernelsShrugOffModerateCaps) {
  ExecutionSimulator sim;
  const auto kernel = memoryBound();
  const Measurement free = sim.run(kernel, 120.0);
  const Measurement capped = sim.run(kernel, 70.0);
  EXPECT_LT(capped.seconds / free.seconds, 1.05);
}

TEST(ExecutionSim, TratioNeverExceedsPratioForTheStudyKernels) {
  ExecutionSimulator sim;
  for (const auto& kernel : {computeBound(), memoryBound()}) {
    const Measurement base = sim.run(kernel, 120.0);
    for (double cap : {90.0, 70.0, 50.0, 40.0}) {
      const Measurement capped = sim.run(kernel, cap);
      const double tRatio = capped.seconds / base.seconds;
      const double pRatio = 120.0 / cap;
      ASSERT_LE(tRatio, pRatio * 1.05)
          << kernel.kernel << " at " << cap << "W";
    }
  }
}

TEST(ExecutionSim, CapsAreClampedToTheRaplRange) {
  ExecutionSimulator sim;
  const auto kernel = memoryBound();
  const Measurement low = sim.run(kernel, 5.0);     // clamps to 40 W
  const Measurement floor = sim.run(kernel, 40.0);
  EXPECT_NEAR(low.seconds, floor.seconds, floor.seconds * 1e-6);
}

TEST(ExecutionSim, IdealAndStepwiseGovernorsAgreeOnLongRuns) {
  SimulatorOptions ideal;
  ideal.idealGovernor = true;
  ExecutionSimulator simIdeal(arch::MachineDescription::broadwellE52695v4(),
                              ideal);
  ExecutionSimulator simStep;
  const auto kernel = repeatKernel(computeBound(), 4);
  const Measurement a = simIdeal.run(kernel, 60.0);
  const Measurement b = simStep.run(kernel, 60.0);
  EXPECT_NEAR(a.seconds, b.seconds, a.seconds * 0.05);
  EXPECT_NEAR(a.effectiveGhz, b.effectiveGhz, 0.1);
}

TEST(ExecutionSim, PhaseMeasurementsSumToTotal) {
  ExecutionSimulator sim;
  vis::KernelProfile kernel = computeBound();
  kernel.phases.push_back(memoryBound().phases.front());
  const Measurement m = sim.run(kernel, 80.0);
  ASSERT_EQ(m.phases.size(), 2u);
  EXPECT_NEAR(m.phases[0].seconds + m.phases[1].seconds, m.seconds, 1e-9);
  EXPECT_EQ(m.phases[0].name, "hot");
  EXPECT_EQ(m.phases[1].name, "stream");
  for (const auto& phase : m.phases) {
    ASSERT_GT(phase.instructions, 0.0);
    ASSERT_GT(phase.averageWatts, 0.0);
    ASSERT_GT(phase.averageGhz, 0.0);
  }
}

TEST(ExecutionSim, IpcAndMissRateAreDerivedConsistently) {
  ExecutionSimulator sim;
  const Measurement m = sim.run(memoryBound(), 120.0);
  double instructions = 0.0;
  for (const auto& phase : m.phases) instructions += phase.instructions;
  EXPECT_NEAR(m.ipc, sim.costModel().referenceIpc(instructions, m.seconds),
              1e-9);
  EXPECT_GT(m.llcMissRate, 0.0);
  EXPECT_LE(m.llcMissRate, 1.0);
  EXPECT_GT(m.elementsPerSecond, 0.0);
}

TEST(RepeatKernel, MultipliesPhasesAndElements) {
  const auto once = computeBound();
  const auto thrice = repeatKernel(once, 3);
  EXPECT_EQ(thrice.phases.size(), 3u);
  EXPECT_EQ(thrice.elements, once.elements * 3);
  EXPECT_EQ(thrice.kernel, once.kernel);
  EXPECT_THROW(repeatKernel(once, 0), Error);

  ExecutionSimulator sim;
  const Measurement one = sim.run(once, 120.0);
  const Measurement three = sim.run(thrice, 120.0);
  EXPECT_NEAR(three.seconds, 3.0 * one.seconds, one.seconds * 0.05);
}

// Property: time under a cap is monotone — lower caps never speed
// kernels up.
class CapMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CapMonotonicity, TimeIsNonDecreasingAsCapsDrop) {
  ExecutionSimulator sim;
  const auto kernel =
      GetParam() == 0 ? computeBound() : memoryBound();
  double lastSeconds = 0.0;
  for (double cap = 120.0; cap >= 40.0; cap -= 10.0) {
    const Measurement m = sim.run(kernel, cap);
    ASSERT_GE(m.seconds, lastSeconds * 0.995) << "cap " << cap;
    lastSeconds = std::max(lastSeconds, m.seconds);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, CapMonotonicity, ::testing::Values(0, 1));

}  // namespace
}  // namespace pviz::core
