// Threshold filter — keep cells whose field value lies inside a range.
//
// Follows the paper's description: iterate over every cell, compare the
// cell's value (point fields are averaged to the cell) against the
// range, and copy qualifying cells to the output.
#pragma once

#include "util/compat.h"

#include <string>

#include "viz/dataset/explicit_mesh.h"
#include "viz/dataset/uniform_grid.h"
#include "viz/worklet/work_profile.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::vis {

class ThresholdFilter {
 public:
  struct Result {
    HexSubset kept;
    KernelProfile profile;
  };

  void setRange(double lo, double hi) {
    PVIZ_REQUIRE(lo <= hi, "threshold range must satisfy lo <= hi");
    lo_ = lo;
    hi_ = hi;
  }
  double rangeLo() const { return lo_; }
  double rangeHi() const { return hi_; }

  /// Select cells of `grid` whose `fieldName` value falls in [lo, hi].
  /// Point fields are averaged over the cell's eight corners first.
  Result run(util::ExecutionContext& ctx, const UniformGrid& grid,
             const std::string& fieldName) const;

  /// Compatibility shim: run on a fresh context over the global pool.
  PVIZ_CONTEXT_SHIM
  Result run(const UniformGrid& grid, const std::string& fieldName) const;

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
};

}  // namespace pviz::vis
