# Empty dependencies file for test_gradient_histogram.
# This may be replaced when dependencies are built.
