// Unit tests for the execution-backend abstraction (util/backend.h):
// token round-trips, singleton identity, dispatch coverage and chunk
// shape per backend, and ExecutionContext backend selection.

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/backend.h"
#include "util/exec_context.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace pviz {
namespace {

using exec::Backend;
using exec::BackendKind;

TEST(BackendTokens, RoundTripAndReject) {
  for (BackendKind kind : {BackendKind::Serial, BackendKind::Threaded,
                           BackendKind::Vectorized}) {
    EXPECT_EQ(exec::parseBackendToken(exec::backendToken(kind)), kind);
    EXPECT_EQ(exec::backendFor(kind).kind(), kind);
    EXPECT_STREQ(exec::backendFor(kind).token(), exec::backendToken(kind));
  }
  EXPECT_THROW(exec::parseBackendToken("cuda"), Error);
  EXPECT_THROW(exec::parseBackendToken(""), Error);
}

TEST(BackendSingletons, StableIdentity) {
  EXPECT_EQ(&exec::serialBackend(), &exec::backendFor(BackendKind::Serial));
  EXPECT_EQ(&exec::threadedBackend(),
            &exec::backendFor(BackendKind::Threaded));
  EXPECT_EQ(&exec::vectorizedBackend(),
            &exec::backendFor(BackendKind::Vectorized));
  EXPECT_TRUE(exec::vectorizedBackend().vectorized());
  EXPECT_FALSE(exec::serialBackend().vectorized());
  EXPECT_FALSE(exec::threadedBackend().vectorized());
}

TEST(BackendConcurrency, SerialIsOneThreadedFollowsPool) {
  util::ThreadPool pool(3);
  EXPECT_EQ(exec::serialBackend().concurrency(pool), 1u);
  EXPECT_EQ(exec::threadedBackend().concurrency(pool), pool.concurrency());
  EXPECT_EQ(exec::vectorizedBackend().concurrency(pool), pool.concurrency());
}

struct SumEnv {
  std::vector<std::int64_t> data;
  std::mutex mutex;
  std::int64_t sum = 0;
  std::int64_t chunks = 0;
  std::int64_t maxChunk = 0;
};

void sumChunk(void* envPtr, std::int64_t begin, std::int64_t end) {
  auto* env = static_cast<SumEnv*>(envPtr);
  std::int64_t local = 0;
  for (std::int64_t i = begin; i < end; ++i) {
    local += env->data[static_cast<std::size_t>(i)];
  }
  std::lock_guard lock(env->mutex);
  env->sum += local;
  ++env->chunks;
  env->maxChunk = std::max(env->maxChunk, end - begin);
}

TEST(BackendDispatch, CoversRangeExactlyOnceWithGrainBound) {
  constexpr std::int64_t kN = 10'000;
  constexpr std::int64_t kGrain = 128;
  util::ThreadPool pool(2);
  for (BackendKind kind : {BackendKind::Serial, BackendKind::Threaded,
                           BackendKind::Vectorized}) {
    SumEnv env;
    env.data.resize(kN);
    std::iota(env.data.begin(), env.data.end(), std::int64_t{1});
    exec::backendFor(kind).forChunks(pool, nullptr, 0, kN, kGrain, &env,
                                     &sumChunk);
    EXPECT_EQ(env.sum, kN * (kN + 1) / 2) << exec::backendToken(kind);
    EXPECT_EQ(env.chunks, (kN + kGrain - 1) / kGrain);
    EXPECT_LE(env.maxChunk, kGrain);
  }
}

TEST(BackendDispatch, EmptyRangeRunsNothing) {
  util::ThreadPool pool(2);
  for (BackendKind kind : {BackendKind::Serial, BackendKind::Threaded,
                           BackendKind::Vectorized}) {
    SumEnv env;
    exec::backendFor(kind).forChunks(pool, nullptr, 5, 5, 64, &env, &sumChunk);
    EXPECT_EQ(env.chunks, 0) << exec::backendToken(kind);
  }
}

TEST(ExecutionContextBackend, DefaultsAndSwaps) {
  util::ExecutionContext ctx;
  EXPECT_EQ(&ctx.backend(), &exec::defaultBackend());
  ctx.setBackend(exec::serialBackend());
  EXPECT_EQ(&ctx.backend(), &exec::serialBackend());
  EXPECT_EQ(ctx.backend().kind(), BackendKind::Serial);

  // The parallel primitives follow the context's backend: under the
  // serial backend a parallelFor runs on the calling thread even when
  // the context owns a multi-thread pool.
  ctx.setBackend(exec::serialBackend());
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  util::parallelFor(ctx, 0, 64, [&](std::int64_t i) {
    seen[static_cast<std::size_t>(i)] = std::this_thread::get_id();
  }, 8);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ExecutionContextBackend, PrimitivesMatchAcrossBackends) {
  // Scan / select / reduce / gather must be bit-identical on every
  // backend (the filter-level equivalence lives in the determinism
  // suite; this is the primitive-level contract).
  constexpr std::int64_t kN = 100'000;
  util::ExecutionContext reference;
  reference.setBackend(exec::serialBackend());

  std::vector<std::int64_t> counts(kN);
  for (std::int64_t i = 0; i < kN; ++i) counts[static_cast<std::size_t>(i)] = i % 7;
  std::vector<std::int64_t> refScan = counts;
  const std::int64_t refTotal = util::exclusiveScan(reference, refScan);
  const std::vector<std::int64_t> refSel =
      util::parallelSelect(reference, kN, [](std::int64_t i) {
        return i % 13 == 0;
      });
  const double refSum = util::parallelReduce(
      reference, 0, kN, 0.0,
      [](double acc, std::int64_t i) {
        return acc + static_cast<double>(i) * 1e-3;
      },
      [](double a, double b) { return a + b; });

  for (BackendKind kind : {BackendKind::Threaded, BackendKind::Vectorized}) {
    util::ExecutionContext ctx;
    ctx.setBackend(exec::backendFor(kind));
    std::vector<std::int64_t> scan = counts;
    EXPECT_EQ(util::exclusiveScan(ctx, scan), refTotal);
    EXPECT_EQ(scan, refScan) << exec::backendToken(kind);
    EXPECT_EQ(util::parallelSelect(ctx, kN, [](std::int64_t i) {
      return i % 13 == 0;
    }), refSel) << exec::backendToken(kind);
    const double sum = util::parallelReduce(
        ctx, 0, kN, 0.0,
        [](double acc, std::int64_t i) {
          return acc + static_cast<double>(i) * 1e-3;
        },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(sum, refSum) << exec::backendToken(kind);
  }
}

}  // namespace
}  // namespace pviz
