// Node-level simulation, CSV reporting, and energy metric tests.
#include <gtest/gtest.h>

#include <sstream>

#include "core/node_sim.h"
#include "core/report.h"

namespace pviz::core {
namespace {

vis::KernelProfile sampleKernel() {
  vis::KernelProfile k;
  k.kernel = "sample";
  k.elements = 1 << 20;
  vis::WorkProfile& p = k.addPhase("work");
  p.flops = 2e10;
  p.intOps = 1e10;
  p.memOps = 8e9;
  p.bytesStreamed = 5e9;
  p.parallelFraction = 0.99;
  p.overlap = 0.8;
  return k;
}

TEST(NodeSim, AggregatesSocketsPlusOther) {
  NodeDescription node;
  node.sockets = 2;
  node.otherWatts = 32.0;
  NodeSimulator sim(node);
  const NodeMeasurement m = sim.run(sampleKernel(), 120.0);
  EXPECT_NEAR(m.packageWatts, 2.0 * m.perSocket.averageWatts, 1e-9);
  EXPECT_NEAR(m.nodeWatts, m.packageWatts + 32.0, 1e-9);
  EXPECT_NEAR(m.energyJoules, m.nodeWatts * m.seconds, 1e-6);
  EXPECT_GT(m.packageShare(), 0.6);
  EXPECT_LT(m.packageShare(), 0.95);
}

TEST(NodeSim, TwoSocketsHalveTheWorkPerSocket) {
  NodeDescription two;
  two.sockets = 2;
  NodeDescription one;
  one.sockets = 1;
  NodeSimulator simTwo(two), simOne(one);
  const double tTwo = simTwo.run(sampleKernel(), 120.0).seconds;
  const double tOne = simOne.run(sampleKernel(), 120.0).seconds;
  EXPECT_NEAR(tOne / tTwo, 2.0, 0.1);
}

TEST(NodeSim, CapActsPerSocket) {
  NodeSimulator sim;
  const NodeMeasurement free = sim.run(sampleKernel(), 120.0);
  const NodeMeasurement capped = sim.run(sampleKernel(), 50.0);
  EXPECT_LE(capped.perSocket.averageWatts, 52.0);
  EXPECT_GT(capped.seconds, free.seconds);
}

TEST(NodeSim, ValidatesConfiguration) {
  NodeDescription bad;
  bad.sockets = 0;
  EXPECT_THROW(NodeSimulator{bad}, Error);
  bad = NodeDescription{};
  bad.otherWatts = -1.0;
  EXPECT_THROW(NodeSimulator{bad}, Error);
}

std::vector<ConfigRecord> sampleSweep() {
  std::vector<ConfigRecord> sweep;
  ExecutionSimulator sim;
  const auto kernel = sampleKernel();
  Measurement base;
  for (double cap : {120.0, 80.0, 40.0}) {
    ConfigRecord r;
    r.algorithm = Algorithm::Contour;
    r.size = 64;
    r.capWatts = cap;
    r.measurement = sim.run(kernel, cap);
    if (cap == 120.0) base = r.measurement;
    r.ratios = computeRatios(base, 120.0, r.measurement, cap);
    sweep.push_back(std::move(r));
  }
  return sweep;
}

TEST(Report, CsvHasHeaderAndOneRowPerRecord) {
  const auto sweep = sampleSweep();
  std::ostringstream os;
  writeStudyCsv(sweep, os);
  const std::string csv = os.str();
  // Header + 3 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("algorithm,size,cap_watts"), std::string::npos);
  EXPECT_NE(csv.find("Contour,64,120.000"), std::string::npos);
  // 13 columns per row.
  const std::string firstLine = csv.substr(0, csv.find('\n'));
  EXPECT_EQ(std::count(firstLine.begin(), firstLine.end(), ','), 12);
}

TEST(Report, EnergyMetricsAreConsistent) {
  const auto sweep = sampleSweep();
  const EnergyMetrics em = energyMetrics(sweep[0].measurement);
  EXPECT_DOUBLE_EQ(em.energyJoules, sweep[0].measurement.energyJoules);
  EXPECT_DOUBLE_EQ(em.edp,
                   em.energyJoules * sweep[0].measurement.seconds);
  EXPECT_DOUBLE_EQ(em.ed2p, em.edp * sweep[0].measurement.seconds);
}

TEST(Report, OptimalCapsFindTheRightExtremes) {
  const auto sweep = sampleSweep();
  const OptimalCaps best = optimalCaps(sweep);
  // The sample kernel is compute bound: fastest at the default cap.
  EXPECT_EQ(best.minTimeCap, 120.0);
  // Deep caps save energy on compute kernels (voltage scaling beats
  // the runtime stretch for this one).
  EXPECT_LT(best.minEnergyCap, 120.0);
  // EDP sits between the two criteria.
  EXPECT_GE(best.minEdpCap, best.minEnergyCap);
  EXPECT_THROW(optimalCaps({}), Error);
}

}  // namespace
}  // namespace pviz::core
