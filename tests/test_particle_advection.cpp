// Particle advection (RK4 streamline) tests.
#include <gtest/gtest.h>

#include <cmath>

#include "viz/filters/particle_advection.h"

namespace pviz::vis {
namespace {

UniformGrid constantFlow(Id cells, Vec3 v) {
  UniformGrid g = UniformGrid::cube(cells);
  Field f = Field::zeros("velocity", Association::Points, 3, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) f.setVec3(p, v);
  g.addField(std::move(f));
  return g;
}

// Rigid rotation about the domain center in the x-y plane.
UniformGrid rotationFlow(Id cells) {
  UniformGrid g = UniformGrid::cube(cells);
  Field f = Field::zeros("velocity", Association::Points, 3, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) {
    const Vec3 pos = g.pointPosition(p) - Vec3{0.5, 0.5, 0.5};
    f.setVec3(p, {-pos.y, pos.x, 0.0});
  }
  g.addField(std::move(f));
  return g;
}

TEST(ParticleAdvection, ZeroFieldParticlesStayPut) {
  const UniformGrid g = constantFlow(6, {0, 0, 0});
  ParticleAdvectionFilter filter;
  filter.setSeedCount(20);
  filter.setMaxSteps(50);
  const auto result = filter.run(g, "velocity");
  EXPECT_EQ(result.streamlines.numLines(), 20);
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id last =
        result.streamlines.offsets[static_cast<std::size_t>(l) + 1] - 1;
    const Vec3 d = result.streamlines.points[static_cast<std::size_t>(last)] -
                   result.streamlines.points[static_cast<std::size_t>(first)];
    ASSERT_NEAR(length(d), 0.0, 1e-12);
  }
}

TEST(ParticleAdvection, ConstantFlowGivesStraightLinesOfExactLength) {
  const Vec3 v{0.3, 0.1, 0.05};
  const UniformGrid g = constantFlow(8, v);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(10);
  filter.setMaxSteps(40);
  filter.setStepLength(0.01);
  const auto result = filter.run(g, "velocity");
  // For a constant field, RK4 moves exactly h*v per step.
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id count = result.streamlines.lineSize(l);
    for (Id k = 1; k < count; ++k) {
      const Vec3 step =
          result.streamlines.points[static_cast<std::size_t>(first + k)] -
          result.streamlines.points[static_cast<std::size_t>(first + k - 1)];
      ASSERT_NEAR(step.x, v.x * 0.01, 1e-12);
      ASSERT_NEAR(step.y, v.y * 0.01, 1e-12);
      ASSERT_NEAR(step.z, v.z * 0.01, 1e-12);
    }
  }
}

TEST(ParticleAdvection, RotationKeepsRadiusInvariant) {
  const UniformGrid g = rotationFlow(32);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(50);
  filter.setMaxSteps(200);
  filter.setStepLength(0.01);
  const auto result = filter.run(g, "velocity");
  // RK4 on a rigid rotation preserves radius to high order; verify the
  // first few hundred steps keep |r| within a tight tolerance.
  Id checked = 0;
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id count = result.streamlines.lineSize(l);
    if (count < 10) continue;
    const Vec3 c{0.5, 0.5, 0.5};
    const Vec3 p0 =
        result.streamlines.points[static_cast<std::size_t>(first)] - c;
    const double r0 = std::hypot(p0.x, p0.y);
    if (r0 < 0.05) continue;
    for (Id k = 0; k < count; ++k) {
      const Vec3 p =
          result.streamlines.points[static_cast<std::size_t>(first + k)] - c;
      ASSERT_NEAR(std::hypot(p.x, p.y), r0, r0 * 0.02 + 2e-3);
      ++checked;
    }
  }
  EXPECT_GT(checked, 500);
}

TEST(ParticleAdvection, OutflowTerminatesParticles) {
  const UniformGrid g = constantFlow(8, {1.0, 0, 0});
  ParticleAdvectionFilter filter;
  filter.setSeedCount(30);
  filter.setMaxSteps(100000);
  filter.setStepLength(0.01);
  const auto result = filter.run(g, "velocity");
  // Everything flows out the +x face long before the step limit.
  EXPECT_EQ(result.terminated, 30);
  EXPECT_LT(result.totalSteps, 30 * 120);
  for (const auto& p : result.streamlines.points) {
    ASSERT_LE(p.x, 1.0 + 1e-9);
  }
}

TEST(ParticleAdvection, DeterministicAcrossRuns) {
  const UniformGrid g = rotationFlow(12);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(25);
  filter.setMaxSteps(60);
  const auto a = filter.run(g, "velocity");
  const auto b = filter.run(g, "velocity");
  ASSERT_EQ(a.streamlines.points.size(), b.streamlines.points.size());
  for (std::size_t i = 0; i < a.streamlines.points.size(); ++i) {
    ASSERT_EQ(a.streamlines.points[i], b.streamlines.points[i]);
  }
  EXPECT_EQ(a.totalSteps, b.totalSteps);
}

TEST(ParticleAdvection, SeedRngChangesSeeds) {
  const UniformGrid g = rotationFlow(12);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(5);
  filter.setMaxSteps(5);
  const auto a = filter.run(g, "velocity");
  filter.setSeedRngSeed(777);
  const auto b = filter.run(g, "velocity");
  EXPECT_FALSE(a.streamlines.points[0] == b.streamlines.points[0]);
}

TEST(ParticleAdvection, ScalarsRecordIntegrationTime) {
  const UniformGrid g = constantFlow(8, {0.5, 0, 0});
  ParticleAdvectionFilter filter;
  filter.setSeedCount(3);
  filter.setMaxSteps(10);
  filter.setStepLength(0.002);
  const auto result = filter.run(g, "velocity");
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id count = result.streamlines.lineSize(l);
    for (Id k = 0; k < count; ++k) {
      ASSERT_NEAR(
          result.streamlines.pointScalars[static_cast<std::size_t>(first + k)],
          static_cast<double>(k) * 0.002, 1e-12);
    }
  }
}

TEST(ParticleAdvection, ValidatesParameters) {
  ParticleAdvectionFilter filter;
  EXPECT_THROW(filter.setSeedCount(0), Error);
  EXPECT_THROW(filter.setMaxSteps(0), Error);
  EXPECT_THROW(filter.setStepLength(0.0), Error);
  UniformGrid g = UniformGrid::cube(2);
  g.addField(Field::zeros("s", Association::Points, 1, g.numPoints()));
  EXPECT_THROW(filter.run(g, "s"), Error);
}

TEST(ParticleAdvection, ProfileCountsTrackSteps) {
  const UniformGrid g = rotationFlow(10);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(40);
  filter.setMaxSteps(30);
  const auto result = filter.run(g, "velocity");
  EXPECT_EQ(result.profile.kernel, "particle-advection");
  EXPECT_GT(result.totalSteps, 0);
  // Advection flops scale linearly with the steps actually taken.
  const auto& advect = result.profile.phases.front();
  EXPECT_DOUBLE_EQ(advect.flops,
                   static_cast<double>(result.totalSteps) * (4 * 158 + 56));
}

}  // namespace
}  // namespace pviz::vis
