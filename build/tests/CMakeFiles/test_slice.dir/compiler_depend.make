# Empty compiler generated dependencies file for test_slice.
# This may be replaced when dependencies are built.
