// Blocking TCP client for the PowerViz service protocol.
//
// One connection, synchronous request/response: request() frames the
// JSON, writes the line, then reads response lines until the one whose
// id matches (the server may interleave responses to other requests on
// a shared connection; this client issues one request at a time, so in
// practice the first line is the answer).  Used by powerviz_client, the
// load generator, and the end-to-end tests.
#pragma once

#include <string>

#include "service/protocol.h"

namespace pviz::service {

class ServiceClient {
 public:
  /// Connect to host:port; throws pviz::Error on failure.
  ServiceClient(const std::string& host, int port);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Send one request and block for its response (matched by id; the
  /// client stamps an id when the request has none).
  Response request(Request req);

  /// Raw exchange: send `line`, return the next response line verbatim
  /// (no id matching).  For protocol tests and hand-written frames.
  std::string exchangeLine(const std::string& line);

  bool connected() const { return fd_ >= 0; }

 private:
  void writeAll(const std::string& frame);
  std::string readLine();  ///< blocks; throws on EOF/error

  int fd_ = -1;
  std::string buffer_;
  unsigned nextId_ = 1;
};

}  // namespace pviz::service
