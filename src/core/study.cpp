#include "core/study.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/cloverleaf.h"
#include "util/exec_context.h"
#include "util/log.h"

namespace pviz::core {

namespace {

std::string cacheKey(Algorithm algorithm, vis::Id size,
                     const AlgorithmParams& p) {
  std::ostringstream os;
  // Whitespace-free (the cache format is token-separated).
  os << "alg" << static_cast<int>(algorithm) << '|' << size << '|' << p.isovalueCount
     << '|' << p.seedCount << '|' << p.maxSteps << '|' << p.cameraCount
     << '|' << p.imageWidth << 'x' << p.imageHeight << '|' << p.advectionMode;
  // Decomposition changes the profile (ghost-exchange / block-stitch
  // phases), so it is part of the key; the execution backend is not
  // (outputs and profiles are backend-invariant).
  os << "|b" << p.blockCount << "g" << p.ghostLayers;
  return os.str();
}

}  // namespace

Study::Study(StudyConfig config)
    : config_(std::move(config)),
      simulator_(config_.machine, config_.simulator) {
  PVIZ_REQUIRE(!config_.capsWatts.empty(), "study needs at least one cap");
  PVIZ_REQUIRE(!config_.sizes.empty(), "study needs at least one size");
  PVIZ_REQUIRE(config_.cycles >= 1, "study needs at least one cycle");
}

const vis::UniformGrid& Study::dataset(vis::Id size) {
  // One lock spans lookup and generation: concurrent requests for the
  // same size wait for the single generation instead of racing it.
  std::lock_guard lock(datasetMutex_);
  auto it = datasets_.find(size);
  if (it == datasets_.end()) {
    PVIZ_LOG_INFO("generating " << size << "^3 clover dataset");
    it = datasets_
             .emplace(size, std::make_unique<vis::UniformGrid>(
                                sim::makeCloverField(size)))
             .first;
  }
  return *it->second;
}

const vis::KernelProfile& Study::characterize(Algorithm algorithm,
                                              vis::Id size) {
  util::ExecutionContext ctx;
  return characterize(ctx, algorithm, size);
}

const vis::KernelProfile& Study::characterize(util::ExecutionContext& ctx,
                                              Algorithm algorithm,
                                              vis::Id size) {
  const ProfileKey key{static_cast<int>(algorithm), size};

  // Claim the key or join a characterization already in flight.
  // profiles_ is a node-based map, so returned references stay valid
  // while other threads insert.
  {
    std::unique_lock lock(profileMutex_);
    for (;;) {
      auto it = profiles_.find(key);
      if (it != profiles_.end()) return it->second;
      if (inFlight_.insert(key).second) break;  // this thread runs it
      profileReady_.wait(lock);
    }
  }

  vis::KernelProfile profile;
  try {
    // On-disk cache lookup.
    const std::string diskKey = cacheKey(algorithm, size, config_.params);
    bool fromDisk = false;
    if (!config_.cachePath.empty()) {
      std::lock_guard diskLock(diskCacheMutex_);
      auto disk = loadProfileCache(config_.cachePath);
      auto hit = disk.find(diskKey);
      if (hit != disk.end()) {
        PVIZ_LOG_INFO("profile cache hit: " << diskKey);
        profile = std::move(hit->second);
        fromDisk = true;
      }
    }

    if (!fromDisk) {
      PVIZ_LOG_INFO("characterizing " << algorithmName(algorithm) << " at "
                                      << size << "^3");
      profile = runAlgorithm(ctx, algorithm, dataset(size), config_.params);
      if (!config_.cachePath.empty()) {
        std::lock_guard diskLock(diskCacheMutex_);
        auto disk = loadProfileCache(config_.cachePath);
        disk[diskKey] = profile;
        saveProfileCache(config_.cachePath, disk);
      }
    }
  } catch (...) {
    std::lock_guard lock(profileMutex_);
    inFlight_.erase(key);
    profileReady_.notify_all();
    throw;
  }

  std::lock_guard lock(profileMutex_);
  auto inserted = profiles_.emplace(key, std::move(profile)).first;
  inFlight_.erase(key);
  profileReady_.notify_all();
  return inserted->second;
}

vis::KernelProfile Study::characterizeWith(util::ExecutionContext& ctx,
                                           Algorithm algorithm, vis::Id size,
                                           const AlgorithmParams& params) {
  // No in-memory memo (it is keyed on the configured params), but the
  // disk cache applies: its key covers every overridable parameter, so
  // an override never collides with a configured-params entry.  The
  // advection schedule is deliberately absent from the key — schedules
  // are bit-identical, so every schedule maps to the same entry.
  const std::string diskKey = cacheKey(algorithm, size, params);
  if (!config_.cachePath.empty()) {
    std::lock_guard diskLock(diskCacheMutex_);
    auto disk = loadProfileCache(config_.cachePath);
    auto hit = disk.find(diskKey);
    if (hit != disk.end()) {
      PVIZ_LOG_INFO("profile cache hit: " << diskKey);
      return hit->second;
    }
  }
  PVIZ_LOG_INFO("characterizing " << algorithmName(algorithm) << " at "
                                  << size << "^3 (request overrides)");
  vis::KernelProfile profile =
      runAlgorithm(ctx, algorithm, dataset(size), params);
  if (!config_.cachePath.empty()) {
    std::lock_guard diskLock(diskCacheMutex_);
    auto disk = loadProfileCache(config_.cachePath);
    disk[diskKey] = profile;
    saveProfileCache(config_.cachePath, disk);
  }
  return profile;
}

Measurement Study::measure(Algorithm algorithm, vis::Id size,
                           double capWatts) {
  util::ExecutionContext ctx;
  return measure(ctx, algorithm, size, capWatts, config_.cycles);
}

Measurement Study::measure(util::ExecutionContext& ctx, Algorithm algorithm,
                           vis::Id size, double capWatts) {
  return measure(ctx, algorithm, size, capWatts, config_.cycles);
}

Measurement Study::measure(Algorithm algorithm, vis::Id size, double capWatts,
                           int cycles) {
  util::ExecutionContext ctx;
  return measure(ctx, algorithm, size, capWatts, cycles);
}

Measurement Study::measure(util::ExecutionContext& ctx, Algorithm algorithm,
                           vis::Id size, double capWatts, int cycles) {
  PVIZ_REQUIRE(cycles >= 1, "measure needs at least one cycle");
  const vis::KernelProfile& once = characterize(ctx, algorithm, size);
  return modelProfile(ctx, algorithm, once, capWatts, cycles);
}

Measurement Study::measureWith(util::ExecutionContext& ctx,
                               Algorithm algorithm, vis::Id size,
                               double capWatts, int cycles,
                               const AlgorithmParams& params) {
  PVIZ_REQUIRE(cycles >= 1, "measure needs at least one cycle");
  const vis::KernelProfile once =
      characterizeWith(ctx, algorithm, size, params);
  return modelProfile(ctx, algorithm, once, capWatts, cycles);
}

Measurement Study::modelProfile(util::ExecutionContext& ctx,
                                Algorithm algorithm,
                                const vis::KernelProfile& once,
                                double capWatts, int cycles) {
  vis::KernelProfile scaled = scaleKernelWork(once, config_.workScale);
  if (cycles > 1) scaled = repeatKernel(scaled, cycles);
  auto scope = ctx.phase("simulate/" + algorithmName(algorithm));
  return simulator_.run(scaled, capWatts, &ctx.cancel());
}

std::vector<ConfigRecord> Study::capSweep(Algorithm algorithm, vis::Id size) {
  util::ExecutionContext ctx;
  return capSweep(ctx, algorithm, size, config_.capsWatts, config_.cycles);
}

std::vector<ConfigRecord> Study::capSweep(util::ExecutionContext& ctx,
                                          Algorithm algorithm, vis::Id size) {
  return capSweep(ctx, algorithm, size, config_.capsWatts, config_.cycles);
}

std::vector<ConfigRecord> Study::capSweep(Algorithm algorithm, vis::Id size,
                                          const std::vector<double>& capsWatts,
                                          int cycles) {
  util::ExecutionContext ctx;
  return capSweep(ctx, algorithm, size, capsWatts, cycles);
}

std::vector<ConfigRecord> Study::capSweep(util::ExecutionContext& ctx,
                                          Algorithm algorithm, vis::Id size,
                                          const std::vector<double>& capsWatts,
                                          int cycles) {
  PVIZ_REQUIRE(!capsWatts.empty(), "cap sweep needs at least one cap");
  std::vector<ConfigRecord> records;
  records.reserve(capsWatts.size());
  Measurement baseline;
  for (std::size_t i = 0; i < capsWatts.size(); ++i) {
    const double cap = capsWatts[i];
    ConfigRecord record;
    record.algorithm = algorithm;
    record.size = size;
    record.capWatts = cap;
    record.measurement = measure(ctx, algorithm, size, cap, cycles);
    if (i == 0) baseline = record.measurement;
    record.ratios =
        computeRatios(baseline, capsWatts.front(), record.measurement, cap);
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<ConfigRecord> Study::capSweepWith(
    util::ExecutionContext& ctx, Algorithm algorithm, vis::Id size,
    const std::vector<double>& capsWatts, int cycles,
    const AlgorithmParams& params) {
  PVIZ_REQUIRE(!capsWatts.empty(), "cap sweep needs at least one cap");
  PVIZ_REQUIRE(cycles >= 1, "measure needs at least one cycle");
  // Characterize once; the per-cap loop only touches the package model
  // (characterizeWith has no in-memory memo, so calling measureWith per
  // cap would re-run the kernel for every cap).
  const vis::KernelProfile once =
      characterizeWith(ctx, algorithm, size, params);
  std::vector<ConfigRecord> records;
  records.reserve(capsWatts.size());
  Measurement baseline;
  for (std::size_t i = 0; i < capsWatts.size(); ++i) {
    const double cap = capsWatts[i];
    ConfigRecord record;
    record.algorithm = algorithm;
    record.size = size;
    record.capWatts = cap;
    record.measurement = modelProfile(ctx, algorithm, once, cap, cycles);
    if (i == 0) baseline = record.measurement;
    record.ratios =
        computeRatios(baseline, capsWatts.front(), record.measurement, cap);
    records.push_back(std::move(record));
  }
  return records;
}

std::vector<ConfigRecord> Study::runPhase1() {
  util::ExecutionContext ctx;
  return runPhase1(ctx);
}

std::vector<ConfigRecord> Study::runPhase1(util::ExecutionContext& ctx) {
  return capSweep(ctx, Algorithm::Contour, 128);
}

std::vector<ConfigRecord> Study::runPhase2() {
  util::ExecutionContext ctx;
  return runPhase2(ctx);
}

std::vector<ConfigRecord> Study::runPhase2(util::ExecutionContext& ctx) {
  std::vector<ConfigRecord> all;
  for (Algorithm algorithm : allAlgorithms()) {
    auto sweep = capSweep(ctx, algorithm, 128);
    all.insert(all.end(), sweep.begin(), sweep.end());
  }
  return all;
}

std::vector<ConfigRecord> Study::runPhase3() {
  util::ExecutionContext ctx;
  return runPhase3(ctx);
}

std::vector<ConfigRecord> Study::runPhase3(util::ExecutionContext& ctx) {
  std::vector<ConfigRecord> all;
  for (vis::Id size : config_.sizes) {
    for (Algorithm algorithm : allAlgorithms()) {
      auto sweep = capSweep(ctx, algorithm, size);
      all.insert(all.end(), sweep.begin(), sweep.end());
    }
  }
  return all;
}

// --- On-disk characterization cache -------------------------------------
// Line format:
//   entry <quoted-ish key> <kernel> <elements> <phaseCount>
//   phase <name> f i m bs br irr ws par ov          (x phaseCount)

void saveProfileCache(
    const std::string& path,
    const std::map<std::string, vis::KernelProfile>& entries) {
  // Write-then-rename: the temporary lives in the same directory as the
  // final path so the rename is atomic, and a concurrent loadProfileCache
  // (another bench binary or server worker sharing --cache) sees either
  // the old complete file or the new complete file, never a torn one.
  static std::atomic<unsigned> tmpSerial{0};
  std::ostringstream tmpName;
  tmpName << path << ".tmp." << ::getpid() << '.'
          << tmpSerial.fetch_add(1, std::memory_order_relaxed);
  const std::string tmpPath = tmpName.str();
  {
    std::ofstream out(tmpPath, std::ios::trunc);
    PVIZ_REQUIRE(out.good(),
                 "cannot write profile cache at '" + tmpPath + "'");
    out.precision(17);
    for (const auto& [key, profile] : entries) {
      out << "entry " << key << ' ' << profile.kernel << ' '
          << profile.elements << ' ' << profile.phases.size() << '\n';
      for (const auto& ph : profile.phases) {
        out << "phase " << (ph.name.empty() ? "?" : ph.name) << ' ' << ph.flops
            << ' ' << ph.intOps << ' ' << ph.memOps << ' ' << ph.bytesStreamed
            << ' ' << ph.bytesReused << ' ' << ph.irregularAccesses << ' '
            << ph.workingSetBytes << ' ' << ph.parallelFraction << ' '
            << ph.overlap << '\n';
      }
    }
    out.flush();
    PVIZ_REQUIRE(out.good(),
                 "short write to profile cache at '" + tmpPath + "'");
  }
  if (std::rename(tmpPath.c_str(), path.c_str()) != 0) {
    std::remove(tmpPath.c_str());
    PVIZ_REQUIRE(false,
                 "cannot move profile cache into place at '" + path + "'");
  }
}

std::map<std::string, vis::KernelProfile> loadProfileCache(
    const std::string& path) {
  std::map<std::string, vis::KernelProfile> entries;
  std::ifstream in(path);
  if (!in.good()) return entries;  // absent cache = empty cache
  std::string tag;
  while (in >> tag) {
    PVIZ_REQUIRE(tag == "entry", "corrupt profile cache: expected 'entry'");
    std::string key, kernel;
    std::size_t phaseCount = 0;
    vis::KernelProfile profile;
    in >> key >> kernel >> profile.elements >> phaseCount;
    profile.kernel = kernel;
    for (std::size_t p = 0; p < phaseCount; ++p) {
      in >> tag;
      PVIZ_REQUIRE(tag == "phase", "corrupt profile cache: expected 'phase'");
      vis::WorkProfile ph;
      in >> ph.name >> ph.flops >> ph.intOps >> ph.memOps >>
          ph.bytesStreamed >> ph.bytesReused >> ph.irregularAccesses >>
          ph.workingSetBytes >> ph.parallelFraction >> ph.overlap;
      profile.phases.push_back(std::move(ph));
    }
    PVIZ_REQUIRE(in.good() || in.eof(), "corrupt profile cache");
    entries.emplace(std::move(key), std::move(profile));
  }
  return entries;
}

}  // namespace pviz::core
