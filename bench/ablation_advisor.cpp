// Ablation: the power advisor (§VII use case) vs a naive uniform cap.
//
// A CloverLeaf simulation phase and a visualization phase alternate on
// the package under an average power budget.  The advisor classifies
// the viz kernel, pins it near its knee, and hands the freed average
// power to the simulation.  This bench quantifies the win across
// budgets and visualization algorithms.
#include <iostream>

#include "bench_common.h"
#include "core/power_advisor.h"
#include "sim/cloverleaf.h"
#include "util/table.h"

using namespace pviz;

int main() {
  benchutil::printBanner(
      "Ablation — power advisor vs uniform power split",
      "Labasan et al., IPDPS'19, §VII (findings applied to a runtime)");

  const vis::Id size = benchutil::envInt("PVIZ_SIZE", 32);
  // Characterize a simulation phase: a burst of real hydro steps,
  // calibrated to VTK-m/production scale like the study kernels.
  const vis::KernelProfile simKernel = [&] {
    sim::CloverLeaf fresh(size);
    fresh.run(80);
    return core::scaleKernelWork(fresh.takeProfile(), 100.0);
  }();

  core::StudyConfig config = benchutil::defaultStudyConfig();
  core::Study study(config);
  core::PowerAdvisor advisor(config.machine, config.simulator);

  util::TextTable table;
  table.setHeader({"Viz algorithm", "Budget(W)", "VizCap", "SimCap",
                   "Uniform(s)", "Advised(s)", "Speedup"});
  for (core::Algorithm algorithm :
       {core::Algorithm::Contour, core::Algorithm::RayTracing,
        core::Algorithm::VolumeRendering}) {
    const vis::KernelProfile vizKernel =
        core::scaleKernelWork(study.characterize(algorithm, size), 100.0);
    for (double budget : {80.0, 65.0, 50.0}) {
      const core::BudgetPlan plan =
          advisor.planBudget(simKernel, vizKernel, budget);
      table.addRow({core::algorithmName(algorithm),
                    util::formatFixed(budget, 0),
                    util::formatFixed(plan.vizCapWatts, 0),
                    util::formatFixed(plan.simCapWatts, 0),
                    util::formatFixed(plan.uniformSeconds, 3),
                    util::formatFixed(plan.predictedSeconds, 3),
                    util::formatRatio(plan.speedupVsUniform)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: memory-bound viz (contour) frees the most "
               "power — the advisor runs the simulation above the budget "
               "while the time-weighted average complies; a compute-bound "
               "viz (volume rendering) offers little to reallocate\n";
  return 0;
}
