#include "viz/rendering/bvh.h"

#include <algorithm>

#include "util/error.h"
#include "util/exec_context.h"
#include "util/parallel.h"

namespace pviz::vis {

namespace {

Bounds triangleBounds(const TriangleMesh& mesh, Id tri) {
  Bounds b;
  for (int k = 0; k < 3; ++k) {
    b.expand(mesh.points[static_cast<std::size_t>(
        mesh.connectivity[static_cast<std::size_t>(3 * tri + k)])]);
  }
  return b;
}

// Below this many triangles a parallel build costs more than it saves.
constexpr std::int64_t kMinParallelTris = 4096;
// Stop splitting top-level tasks once a range is this small.
constexpr std::int64_t kMinTaskTris = 2048;

}  // namespace

/// Per-triangle bounds and build items computed once up front, so the
/// recursive build never re-gathers the three mesh points per triangle
/// per tree level.  Items carry the centroid next to the triangle index,
/// so the nth_element partitions compare and move 32-byte records
/// directly instead of chasing an index indirection per comparison; the
/// permutation depends only on comparator outcomes, so the resulting
/// triangle order is identical to partitioning the index array.
struct Bvh::BuildData {
  struct Item {
    Vec3 centroid;
    Id tri;
  };
  std::vector<Bounds> triBounds;
  std::vector<Item> items;
  int maxLeafSize = 4;
};

Bvh::Bvh(const TriangleMesh& mesh, int maxLeafSize, bool parallelBuild)
    : mesh_(mesh) {
  util::ExecutionContext ctx;
  build(ctx, maxLeafSize, parallelBuild);
}

Bvh::Bvh(util::ExecutionContext& ctx, const TriangleMesh& mesh,
         int maxLeafSize, bool parallelBuild)
    : mesh_(mesh) {
  build(ctx, maxLeafSize, parallelBuild);
}

void Bvh::build(util::ExecutionContext& ctx, int maxLeafSize,
                bool parallelBuild) {
  PVIZ_REQUIRE(maxLeafSize >= 1, "BVH leaf size must be >= 1");
  const Id n = mesh_.numTriangles();
  order_.resize(static_cast<std::size_t>(n));
  BuildData bd;
  bd.maxLeafSize = maxLeafSize;
  bd.triBounds.resize(static_cast<std::size_t>(n));
  bd.items.resize(static_cast<std::size_t>(n));
  util::parallelFor(ctx, 0, n, [&](Id t) {
    const Bounds b = triangleBounds(mesh_, t);
    bd.triBounds[static_cast<std::size_t>(t)] = b;
    bd.items[static_cast<std::size_t>(t)] = {b.center(), t};
  });
  if (n == 0) return;
  nodes_.reserve(static_cast<std::size_t>(2 * n));

  // Concurrency comes from the context's backend — no hidden singleton
  // read, and a serial backend disables the parallel build outright.
  const unsigned conc = ctx.concurrency();
  if (parallelBuild && conc > 1 && n >= kMinParallelTris) {
    buildParallel(ctx, bd, conc);
  } else {
    buildInto(nodes_, 0, n, bd);
  }
  util::parallelFor(ctx, 0, n, [&](Id t) {
    order_[static_cast<std::size_t>(t)] =
        bd.items[static_cast<std::size_t>(t)].tri;
  });
}

std::int32_t Bvh::buildInto(std::vector<Node>& out, std::int64_t begin,
                            std::int64_t end, BuildData& bd) {
  const auto nodeIndex = static_cast<std::int32_t>(out.size());
  out.emplace_back();

  // Only the centroid bounds are swept here; the node box is the union
  // of the child boxes, filled in bottom-up after the recursion (min/max
  // is exact, so this matches a direct sweep bit-for-bit at half the
  // per-level cost).
  Bounds centroidBox;
  for (std::int64_t i = begin; i < end; ++i) {
    centroidBox.expand(bd.items[static_cast<std::size_t>(i)].centroid);
  }

  const std::int64_t count = end - begin;
  const Vec3 extent = centroidBox.extent();
  const bool degenerate =
      extent.x <= 0.0 && extent.y <= 0.0 && extent.z <= 0.0;
  if (count <= bd.maxLeafSize || degenerate) {
    Bounds box;
    for (std::int64_t i = begin; i < end; ++i) {
      box.expand(bd.triBounds[static_cast<std::size_t>(
          bd.items[static_cast<std::size_t>(i)].tri)]);
    }
    out[static_cast<std::size_t>(nodeIndex)].box = box;
    out[static_cast<std::size_t>(nodeIndex)].first =
        static_cast<std::int32_t>(begin);
    out[static_cast<std::size_t>(nodeIndex)].count =
        static_cast<std::int32_t>(count);
    return nodeIndex;
  }

  int axis = 0;
  if (extent.y > extent[axis]) axis = 1;
  if (extent.z > extent[axis]) axis = 2;

  const std::int64_t mid = begin + count / 2;
  std::nth_element(bd.items.begin() + begin, bd.items.begin() + mid,
                   bd.items.begin() + end,
                   [axis](const BuildData::Item& a, const BuildData::Item& b) {
                     return a.centroid[axis] < b.centroid[axis];
                   });

  const std::int32_t left = buildInto(out, begin, mid, bd);
  const std::int32_t right = buildInto(out, mid, end, bd);
  Bounds box = out[static_cast<std::size_t>(left)].box;
  box.expand(out[static_cast<std::size_t>(right)].box);
  out[static_cast<std::size_t>(nodeIndex)].box = box;
  out[static_cast<std::size_t>(nodeIndex)].left = left;
  out[static_cast<std::size_t>(nodeIndex)].right = right;
  return nodeIndex;
}

void Bvh::buildParallel(util::ExecutionContext& ctx, BuildData& bd,
                        unsigned concurrency) {
  // Phase 1 (serial): split the top of the tree until there are enough
  // independent subtree tasks to feed the pool.  The skeleton performs
  // exactly the same leaf tests, axis picks, and nth_element partitions
  // the serial recursion would, so the final tree is identical.
  struct SkNode {
    Bounds box;
    int left = -1, right = -1;   // skeleton children
    int task = -1;               // subtree task index, -1 for skeleton nodes
    std::int32_t first = -1, count = 0;  // leaf payload
    bool leaf = false;
  };
  struct Subtree {
    std::int64_t begin = 0, end = 0;
    std::vector<Node> nodes;
  };
  std::vector<SkNode> skeleton;
  std::vector<Subtree> tasks;

  int maxDepth = 0;
  while ((std::int64_t{1} << maxDepth) < 4 * static_cast<std::int64_t>(concurrency)) {
    ++maxDepth;
  }

  auto split = [&](auto&& self, std::int64_t begin, std::int64_t end,
                   int depth) -> int {
    const int idx = static_cast<int>(skeleton.size());
    skeleton.emplace_back();

    // As in buildInto: sweep centroid bounds only; inner-node boxes are
    // unioned from the children during the emit phase.
    Bounds centroidBox;
    for (std::int64_t i = begin; i < end; ++i) {
      centroidBox.expand(bd.items[static_cast<std::size_t>(i)].centroid);
    }

    const std::int64_t count = end - begin;
    const Vec3 extent = centroidBox.extent();
    const bool degenerate =
        extent.x <= 0.0 && extent.y <= 0.0 && extent.z <= 0.0;
    if (count <= bd.maxLeafSize || degenerate) {
      Bounds box;
      for (std::int64_t i = begin; i < end; ++i) {
        box.expand(bd.triBounds[static_cast<std::size_t>(
            bd.items[static_cast<std::size_t>(i)].tri)]);
      }
      skeleton[static_cast<std::size_t>(idx)].box = box;
      skeleton[static_cast<std::size_t>(idx)].leaf = true;
      skeleton[static_cast<std::size_t>(idx)].first =
          static_cast<std::int32_t>(begin);
      skeleton[static_cast<std::size_t>(idx)].count =
          static_cast<std::int32_t>(count);
      return idx;
    }
    if (depth >= maxDepth || count <= kMinTaskTris) {
      // Hand the whole range to a subtree task; its root node recomputes
      // the same box during the parallel phase.
      tasks.push_back({begin, end, {}});
      skeleton[static_cast<std::size_t>(idx)].task =
          static_cast<int>(tasks.size()) - 1;
      return idx;
    }

    int axis = 0;
    if (extent.y > extent[axis]) axis = 1;
    if (extent.z > extent[axis]) axis = 2;
    const std::int64_t mid = begin + count / 2;
    std::nth_element(bd.items.begin() + begin, bd.items.begin() + mid,
                     bd.items.begin() + end,
                     [axis](const BuildData::Item& a, const BuildData::Item& b) {
                       return a.centroid[axis] < b.centroid[axis];
                     });
    const int left = self(self, begin, mid, depth + 1);
    const int right = self(self, mid, end, depth + 1);
    skeleton[static_cast<std::size_t>(idx)].left = left;
    skeleton[static_cast<std::size_t>(idx)].right = right;
    return idx;
  };
  const int root = split(split, 0, static_cast<std::int64_t>(order_.size()), 0);

  // Phase 2 (parallel): build each subtree into its own node array.
  // Tasks own disjoint item ranges, so the in-place nth_element
  // partitions never overlap.
  util::parallelFor(
      ctx, 0, static_cast<std::int64_t>(tasks.size()),
      [&](std::int64_t t) {
        Subtree& task = tasks[static_cast<std::size_t>(t)];
        task.nodes.reserve(static_cast<std::size_t>(2 * (task.end - task.begin)));
        buildInto(task.nodes, task.begin, task.end, bd);
      },
      /*grain=*/1);

  // Phase 3 (serial): emit depth-first — node, left subtree, right
  // subtree — splicing task blocks with child offsets rebased.  This is
  // exactly the layout the serial recursion produces.
  auto emit = [&](auto&& self, int sk) -> std::int32_t {
    const SkNode& sn = skeleton[static_cast<std::size_t>(sk)];
    if (sn.task >= 0) {
      const auto offset = static_cast<std::int32_t>(nodes_.size());
      for (Node node : tasks[static_cast<std::size_t>(sn.task)].nodes) {
        if (node.count == 0) {
          node.left += offset;
          node.right += offset;
        }
        nodes_.push_back(node);
      }
      return offset;
    }
    const auto idx = static_cast<std::int32_t>(nodes_.size());
    nodes_.emplace_back();
    if (sn.leaf) {
      nodes_[static_cast<std::size_t>(idx)].box = sn.box;
      nodes_[static_cast<std::size_t>(idx)].first = sn.first;
      nodes_[static_cast<std::size_t>(idx)].count = sn.count;
      return idx;
    }
    const std::int32_t left = self(self, sn.left);
    const std::int32_t right = self(self, sn.right);
    Bounds box = nodes_[static_cast<std::size_t>(left)].box;
    box.expand(nodes_[static_cast<std::size_t>(right)].box);
    nodes_[static_cast<std::size_t>(idx)].box = box;
    nodes_[static_cast<std::size_t>(idx)].left = left;
    nodes_[static_cast<std::size_t>(idx)].right = right;
    return idx;
  };
  emit(emit, root);
}

bool Bvh::intersectTriangle(const Ray& ray, Id tri, TriangleHit& best) const {
  // Möller–Trumbore.
  const Vec3& a = mesh_.points[static_cast<std::size_t>(
      mesh_.connectivity[static_cast<std::size_t>(3 * tri)])];
  const Vec3& b = mesh_.points[static_cast<std::size_t>(
      mesh_.connectivity[static_cast<std::size_t>(3 * tri + 1)])];
  const Vec3& c = mesh_.points[static_cast<std::size_t>(
      mesh_.connectivity[static_cast<std::size_t>(3 * tri + 2)])];
  const Vec3 e1 = b - a;
  const Vec3 e2 = c - a;
  const Vec3 p = cross(ray.direction, e2);
  const double det = dot(e1, p);
  if (std::abs(det) < 1e-14) return false;
  const double invDet = 1.0 / det;
  const Vec3 s = ray.origin - a;
  const double u = dot(s, p) * invDet;
  if (u < 0.0 || u > 1.0) return false;
  const Vec3 q = cross(s, e1);
  const double v = dot(ray.direction, q) * invDet;
  if (v < 0.0 || u + v > 1.0) return false;
  const double t = dot(e2, q) * invDet;
  if (t <= 1e-9 || t >= best.t) return false;
  best.t = t;
  best.triangle = tri;
  best.u = u;
  best.v = v;
  return true;
}

TriangleHit Bvh::intersect(const Ray& ray, TraversalStats* stats) const {
  TriangleHit best;
  if (nodes_.empty()) return best;

  std::int32_t stack[64];
  int top = 0;
  stack[top++] = 0;
  std::int64_t nodesVisited = 0;
  std::int64_t triTests = 0;

  while (top > 0) {
    const Node& node = nodes_[static_cast<std::size_t>(stack[--top])];
    ++nodesVisited;
    double tNear, tFar;
    if (!intersectBox(ray, node.box, tNear, tFar) || tNear >= best.t) {
      continue;
    }
    if (node.count > 0) {
      for (std::int32_t i = 0; i < node.count; ++i) {
        ++triTests;
        intersectTriangle(
            ray, order_[static_cast<std::size_t>(node.first + i)], best);
      }
    } else {
      PVIZ_ASSERT(top + 2 <= 64);
      stack[top++] = node.left;
      stack[top++] = node.right;
    }
  }
  if (stats != nullptr) {
    stats->nodesVisited += nodesVisited;
    stats->trianglesTested += triTests;
  }
  return best;
}

TriangleHit Bvh::intersectBruteForce(const Ray& ray) const {
  TriangleHit best;
  for (Id t = 0; t < mesh_.numTriangles(); ++t) {
    intersectTriangle(ray, t, best);
  }
  return best;
}

}  // namespace pviz::vis
