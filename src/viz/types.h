// Core geometric value types shared by the visualization library.
//
// PowerViz works in double precision throughout (the paper's CloverLeaf
// datasets are doubles); rendering output uses floats only at the
// framebuffer boundary.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace pviz::vis {

using Id = std::int64_t;

/// A 3-component vector of doubles: positions, directions, velocities.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }

  constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }

  friend constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }
  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

inline constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}
inline constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}
inline double length(const Vec3& v) { return std::sqrt(dot(v, v)); }
inline Vec3 normalize(const Vec3& v) {
  const double len = length(v);
  return len > 0.0 ? v / len : Vec3{0.0, 0.0, 0.0};
}
inline constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}
inline constexpr double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

/// Integer triple indexing structured grids (i fastest, k slowest).
struct Id3 {
  Id i = 0, j = 0, k = 0;

  constexpr Id3() = default;
  constexpr Id3(Id ii, Id jj, Id kk) : i(ii), j(jj), k(kk) {}
  constexpr Id product() const { return i * j * k; }
  friend constexpr bool operator==(const Id3& a, const Id3& b) {
    return a.i == b.i && a.j == b.j && a.k == b.k;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Id3& v) {
  return os << '(' << v.i << ", " << v.j << ", " << v.k << ')';
}

/// Axis-aligned bounding box.
struct Bounds {
  Vec3 lo{1e300, 1e300, 1e300};
  Vec3 hi{-1e300, -1e300, -1e300};

  void expand(const Vec3& p) {
    lo.x = std::min(lo.x, p.x); lo.y = std::min(lo.y, p.y); lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x); hi.y = std::max(hi.y, p.y); hi.z = std::max(hi.z, p.z);
  }
  void expand(const Bounds& b) {
    expand(b.lo);
    expand(b.hi);
  }
  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }
  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }
  Vec3 center() const { return (lo + hi) * 0.5; }
  Vec3 extent() const { return hi - lo; }
  double surfaceArea() const {
    if (!valid()) return 0.0;
    const Vec3 e = extent();
    return 2.0 * (e.x * e.y + e.y * e.z + e.z * e.x);
  }
};

}  // namespace pviz::vis
