file(REMOVE_RECURSE
  "CMakeFiles/test_isovolume.dir/test_isovolume.cpp.o"
  "CMakeFiles/test_isovolume.dir/test_isovolume.cpp.o.d"
  "test_isovolume"
  "test_isovolume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isovolume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
