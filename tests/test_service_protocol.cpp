// Service protocol: JSON parse/serialize and the request/response and
// result-payload round trips for every operation type.
#include <gtest/gtest.h>

#include "service/protocol.h"
#include "util/error.h"

namespace pviz::service {
namespace {

// --- Json -----------------------------------------------------------------

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("null").dump(), "null");
  EXPECT_EQ(Json::parse("true").dump(), "true");
  EXPECT_EQ(Json::parse("false").dump(), "false");
  EXPECT_EQ(Json::parse("42").dump(), "42");
  EXPECT_EQ(Json::parse("-3.25").dump(), "-3.25");
  EXPECT_EQ(Json::parse("\"hi\"").dump(), "\"hi\"");
}

TEST(Json, StructureRoundTrip) {
  const std::string text =
      R"({"op":"study","sizes":[32,64],"nested":{"a":true,"b":null}})";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, StringEscapes) {
  const Json v = Json::parse(R"("line\nbreak\ttab \"quoted\" A")");
  EXPECT_EQ(v.asString(), "line\nbreak\ttab \"quoted\" A");
  // Dump re-escapes control characters.
  EXPECT_EQ(Json(std::string("a\nb")).dump(), "\"a\\nb\"");
}

TEST(Json, WhitespaceTolerant) {
  const Json v = Json::parse("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(v.find("a")->asArray().size(), 2u);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("{\"a\":}"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
  EXPECT_THROW(Json::parse("{} trailing"), Error);
  EXPECT_THROW(Json::parse("1.2.3"), Error);
}

TEST(Json, TypeMismatchThrows) {
  const Json v = Json::parse("{\"a\":1}");
  EXPECT_THROW(v.asArray(), Error);
  EXPECT_THROW(v.find("a")->asString(), Error);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, DumpIsSingleLine) {
  Json v = Json::object();
  v.set("text", "has\nnewline");
  EXPECT_EQ(v.dump().find('\n'), std::string::npos);
}

// Regression: the recursive-descent parser used to recurse once per
// nesting level with no bound, so a remotely supplied "[[[[..." frame
// could overflow the stack.  Depth past the cap must be a parse error,
// not a crash.
TEST(Json, NestingDepthIsBounded) {
  auto nested = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  // At the default bound: parses.
  EXPECT_NO_THROW(Json::parse(nested(Json::kDefaultMaxDepth)));
  // One past it: clean error.
  EXPECT_THROW(Json::parse(nested(Json::kDefaultMaxDepth + 1)), Error);
  // Deep enough that unbounded recursion would have crashed the
  // process rather than thrown.
  EXPECT_THROW(Json::parse(nested(1u << 20)), Error);
  // Objects count toward the same bound as arrays.
  std::string deepObject;
  for (std::size_t i = 0; i <= Json::kDefaultMaxDepth; ++i) {
    deepObject += "{\"k\":";
  }
  deepObject += "null";
  deepObject.append(Json::kDefaultMaxDepth + 1, '}');
  EXPECT_THROW(Json::parse(deepObject), Error);
}

TEST(Json, NestingDepthIsConfigurable) {
  EXPECT_THROW(Json::parse("[[1]]", 1), Error);
  EXPECT_NO_THROW(Json::parse("[[1]]", 2));
  const Json v = Json::parse("[[[[[1]]]]]", 5);
  EXPECT_EQ(v.dump(), "[[[[[1]]]]]");
  // A failed parse names the bound in its message.
  try {
    Json::parse("[[[]]]", 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper than 2"),
              std::string::npos);
  }
}

// --- Requests -------------------------------------------------------------

void expectRequestRoundTrip(const Request& request) {
  const Request parsed = requestFromJson(Json::parse(toJson(request).dump()));
  EXPECT_EQ(parsed.op, request.op);
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.algorithm, request.algorithm);
  EXPECT_EQ(parsed.size, request.size);
  EXPECT_EQ(parsed.algorithms, request.algorithms);
  EXPECT_EQ(parsed.sizes, request.sizes);
  EXPECT_EQ(parsed.capsWatts, request.capsWatts);
  EXPECT_EQ(parsed.cycles, request.cycles);
  EXPECT_DOUBLE_EQ(parsed.budgetWatts, request.budgetWatts);
  EXPECT_EQ(parsed.simSteps, request.simSteps);
  EXPECT_DOUBLE_EQ(parsed.delayMs, request.delayMs);
  EXPECT_EQ(parsed.backend, request.backend);
  EXPECT_EQ(parsed.advectSeeds, request.advectSeeds);
  EXPECT_EQ(parsed.advectSteps, request.advectSteps);
  EXPECT_EQ(parsed.advectMode, request.advectMode);
  EXPECT_EQ(parsed.advectSchedule, request.advectSchedule);
  EXPECT_EQ(parsed.blocks, request.blocks);
  EXPECT_EQ(parsed.ghost, request.ghost);
}

TEST(Protocol, PingRoundTrip) {
  Request request;
  request.op = Op::Ping;
  request.id = "p1";
  request.delayMs = 12.5;
  expectRequestRoundTrip(request);
}

TEST(Protocol, StatsRoundTrip) {
  Request request;
  request.op = Op::Stats;
  request.id = "s1";
  expectRequestRoundTrip(request);
}

TEST(Protocol, CharacterizeRoundTrip) {
  Request request;
  request.op = Op::Characterize;
  request.id = "c1";
  request.algorithm = core::Algorithm::RayTracing;
  request.size = 64;
  expectRequestRoundTrip(request);
}

TEST(Protocol, ClassifyRoundTrip) {
  Request request;
  request.op = Op::Classify;
  request.algorithm = core::Algorithm::VolumeRendering;
  request.size = 32;
  request.capsWatts = {120, 80, 40};
  expectRequestRoundTrip(request);
}

TEST(Protocol, StudyRoundTrip) {
  Request request;
  request.op = Op::Study;
  request.id = "batch-7";
  request.algorithms = {core::Algorithm::Contour, core::Algorithm::Slice};
  request.sizes = {32, 64};
  request.capsWatts = {120, 60};
  request.cycles = 5;
  expectRequestRoundTrip(request);
}

TEST(Protocol, BudgetRoundTrip) {
  Request request;
  request.op = Op::Budget;
  request.algorithm = core::Algorithm::Threshold;
  request.size = 128;
  request.budgetWatts = 65.0;
  request.simSteps = 12;
  expectRequestRoundTrip(request);
}

TEST(Protocol, BackendFieldRoundTrip) {
  Request request;
  request.op = Op::Classify;
  request.algorithm = core::Algorithm::Contour;
  request.size = 64;
  request.backend = "vectorized";
  expectRequestRoundTrip(request);
  // Empty backend (the default) is omitted from the wire form entirely.
  Request plain;
  plain.op = Op::Ping;
  EXPECT_EQ(toJson(plain).find("backend"), nullptr);
  // The backend never reaches the cache key: every backend is
  // bit-identical, so serial and vectorized must share a cache entry.
  Request other = request;
  other.backend = "serial";
  EXPECT_EQ(canonicalCacheKey(request), canonicalCacheKey(other));
}

TEST(Protocol, AdvectOverridesRoundTrip) {
  Request request;
  request.op = Op::Characterize;
  request.algorithm = core::Algorithm::ParticleAdvection;
  request.size = 64;
  request.advectSeeds = 5000;
  request.advectSteps = 250;
  request.advectMode = "pathline";
  request.advectSchedule = "static";
  expectRequestRoundTrip(request);
  // Unset overrides (the defaults) stay off the wire entirely.
  Request plain;
  plain.op = Op::Characterize;
  plain.algorithm = core::Algorithm::ParticleAdvection;
  plain.size = 64;
  const Json wire = toJson(plain);
  EXPECT_EQ(wire.find("advect_seeds"), nullptr);
  EXPECT_EQ(wire.find("advect_mode"), nullptr);
  // Invalid tokens are rejected at parse, before the engine sees them.
  EXPECT_THROW(
      requestFromJson(Json::parse(
          R"({"op":"characterize","algorithm":"advection","size":64,)"
          R"("advect_mode":"sideways"})")),
      Error);
  EXPECT_THROW(
      requestFromJson(Json::parse(
          R"({"op":"characterize","algorithm":"advection","size":64,)"
          R"("advect_schedule":"greedy"})")),
      Error);
}

TEST(Protocol, CacheKeyCoversAdvectOverridesButNotSchedule) {
  Request a;
  a.op = Op::Characterize;
  a.algorithm = core::Algorithm::ParticleAdvection;
  a.size = 64;
  Request b = a;
  // Seeds, steps and mode change the result: the key must fork.
  b.advectSeeds = 5000;
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));
  b = a;
  b.advectSteps = 50;
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));
  b = a;
  b.advectMode = "pathline";
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));
  // The schedule is bit-identical by contract — like the backend, it
  // must share the cache entry.
  b = a;
  b.advectSchedule = "static";
  EXPECT_EQ(canonicalCacheKey(a), canonicalCacheKey(b));
}

TEST(Protocol, BlockOverridesRoundTrip) {
  Request request;
  request.op = Op::Characterize;
  request.algorithm = core::Algorithm::Contour;
  request.size = 64;
  request.blocks = 4;
  request.ghost = 2;
  expectRequestRoundTrip(request);

  Request study;
  study.op = Op::Study;
  study.algorithms = {core::Algorithm::Contour};
  study.sizes = {32};
  study.capsWatts = {120, 60};
  study.cycles = 2;
  study.blocks = 4;
  study.ghost = 2;
  expectRequestRoundTrip(study);

  // Unset overrides (0 = worker default) stay off the wire entirely.
  Request plain;
  plain.op = Op::Characterize;
  plain.algorithm = core::Algorithm::Contour;
  plain.size = 64;
  const Json wire = toJson(plain);
  EXPECT_EQ(wire.find("blocks"), nullptr);
  EXPECT_EQ(wire.find("ghost"), nullptr);

  // Out-of-range decompositions are rejected at parse.
  EXPECT_THROW(requestFromJson(Json::parse(
                   R"({"op":"characterize","algorithm":"contour","size":64,)"
                   R"("blocks":5000})")),
               Error);
  EXPECT_THROW(requestFromJson(Json::parse(
                   R"({"op":"characterize","algorithm":"contour","size":64,)"
                   R"("ghost":9})")),
               Error);
}

TEST(Protocol, CacheKeyCoversBlockOverrides) {
  // Outputs are bit-identical across block counts, but the *profile*
  // is not (ghost-exchange / block-stitch phases, per-block launch
  // accounting), so blocks and ghost fork the key — unlike backend.
  Request a;
  a.op = Op::Characterize;
  a.algorithm = core::Algorithm::Contour;
  a.size = 64;
  Request b = a;
  b.blocks = 4;
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));
  b = a;
  b.ghost = 2;
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));

  Request sa;
  sa.op = Op::Study;
  sa.algorithms = {core::Algorithm::Contour};
  sa.sizes = {32};
  sa.capsWatts = {120, 60};
  sa.cycles = 1;
  Request sb = sa;
  sb.blocks = 2;
  EXPECT_NE(canonicalCacheKey(sa), canonicalCacheKey(sb));
}

TEST(Protocol, MalformedRequestsThrow) {
  // No op.
  EXPECT_THROW(requestFromJson(Json::parse("{}")), Error);
  // Unknown op.
  EXPECT_THROW(requestFromJson(Json::parse(R"({"op":"frobnicate"})")), Error);
  // Unknown algorithm.
  EXPECT_THROW(requestFromJson(Json::parse(
                   R"({"op":"classify","algorithm":"nope","size":32})")),
               Error);
  // Missing size.
  EXPECT_THROW(requestFromJson(Json::parse(
                   R"({"op":"classify","algorithm":"contour"})")),
               Error);
  // Non-positive size.
  EXPECT_THROW(requestFromJson(Json::parse(
                   R"({"op":"classify","algorithm":"contour","size":0})")),
               Error);
  // Negative cap.
  EXPECT_THROW(
      requestFromJson(Json::parse(
          R"({"op":"classify","algorithm":"contour","size":32,"caps":[-5]})")),
      Error);
  // Budget without budget_watts.
  EXPECT_THROW(requestFromJson(Json::parse(
                   R"({"op":"budget","algorithm":"contour","size":32})")),
               Error);
  // Unknown backend.
  EXPECT_THROW(requestFromJson(Json::parse(
                   R"({"op":"ping","backend":"quantum"})")),
               Error);
  // Not an object at all.
  EXPECT_THROW(requestFromJson(Json::parse("[1,2,3]")), Error);
}

// --- Responses ------------------------------------------------------------

TEST(Protocol, OkResponseRoundTrip) {
  Response response;
  response.id = "42";
  response.op = Op::Classify;
  response.status = "ok";
  response.cached = true;
  response.elapsedMs = 3.75;
  Json result = Json::object();
  result.set("class", "opportunity");
  response.result = std::move(result);

  const Response parsed = responseFromJson(Json::parse(toJson(response).dump()));
  EXPECT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.id, "42");
  EXPECT_EQ(parsed.op, Op::Classify);
  EXPECT_TRUE(parsed.cached);
  EXPECT_DOUBLE_EQ(parsed.elapsedMs, 3.75);
  EXPECT_EQ(parsed.result.find("class")->asString(), "opportunity");
}

TEST(Protocol, ErrorAndOverloadedResponseRoundTrip) {
  for (const char* status : {"error", "overloaded"}) {
    Response response;
    response.id = "9";
    response.op = Op::Study;
    response.status = status;
    response.error = "something";
    const Response parsed =
        responseFromJson(Json::parse(toJson(response).dump()));
    EXPECT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status, status);
    EXPECT_EQ(parsed.error, "something");
  }
}

// --- Result payloads ------------------------------------------------------

TEST(Protocol, ProfileRoundTrip) {
  vis::KernelProfile profile;
  profile.kernel = "contour";
  profile.elements = 32768;
  vis::WorkProfile& a = profile.addPhase("mc-cells");
  a.flops = 1e6;
  a.intOps = 2e6;
  a.memOps = 3e6;
  a.bytesStreamed = 4e6;
  a.bytesReused = 5e5;
  a.irregularAccesses = 1e4;
  a.workingSetBytes = 1e5;
  a.parallelFraction = 0.95;
  a.overlap = 0.8;
  profile.addPhase("weld").flops = 7e5;

  const vis::KernelProfile parsed =
      profileFromJson(Json::parse(profileToJson(profile).dump()));
  ASSERT_EQ(parsed.phases.size(), 2u);
  EXPECT_EQ(parsed.kernel, "contour");
  EXPECT_EQ(parsed.elements, 32768);
  EXPECT_EQ(parsed.phases[0].name, "mc-cells");
  EXPECT_DOUBLE_EQ(parsed.phases[0].flops, 1e6);
  EXPECT_DOUBLE_EQ(parsed.phases[0].parallelFraction, 0.95);
  EXPECT_DOUBLE_EQ(parsed.phases[0].overlap, 0.8);
  EXPECT_DOUBLE_EQ(parsed.phases[1].flops, 7e5);
  EXPECT_DOUBLE_EQ(parsed.totalInstructions(), profile.totalInstructions());
}

TEST(Protocol, RecordRoundTrip) {
  core::ConfigRecord record;
  record.algorithm = core::Algorithm::Isovolume;
  record.size = 64;
  record.capWatts = 80;
  record.measurement.seconds = 12.5;
  record.measurement.averageWatts = 77.2;
  record.measurement.ipc = 1.31;
  record.measurement.elementsPerSecond = 2.1e7;
  record.ratios.tRatio = 1.04;
  record.ratios.pRatio = 1.5;
  record.ratios.fRatio = 1.2;

  const core::ConfigRecord parsed =
      recordFromJson(Json::parse(recordToJson(record).dump()));
  EXPECT_EQ(parsed.algorithm, core::Algorithm::Isovolume);
  EXPECT_EQ(parsed.size, 64);
  EXPECT_DOUBLE_EQ(parsed.capWatts, 80);
  EXPECT_DOUBLE_EQ(parsed.measurement.seconds, 12.5);
  EXPECT_DOUBLE_EQ(parsed.measurement.ipc, 1.31);
  EXPECT_DOUBLE_EQ(parsed.ratios.tRatio, 1.04);
  EXPECT_DOUBLE_EQ(parsed.ratios.pRatio, 1.5);
}

TEST(Protocol, ClassificationRoundTrip) {
  core::Classification c;
  c.powerOpportunity = true;
  c.kneeCapWatts = 50;
  c.drawAtTdpWatts = 88.5;
  c.slowdownAtMinCap = 1.07;
  c.ipcAtTdp = 0.42;
  const core::Classification parsed =
      classificationFromJson(Json::parse(classificationToJson(c).dump()));
  EXPECT_TRUE(parsed.powerOpportunity);
  EXPECT_DOUBLE_EQ(parsed.kneeCapWatts, 50);
  EXPECT_DOUBLE_EQ(parsed.drawAtTdpWatts, 88.5);
  EXPECT_DOUBLE_EQ(parsed.slowdownAtMinCap, 1.07);
  EXPECT_DOUBLE_EQ(parsed.ipcAtTdp, 0.42);
}

TEST(Protocol, BudgetPlanRoundTrip) {
  core::BudgetPlan plan;
  plan.simCapWatts = 90;
  plan.vizCapWatts = 50;
  plan.predictedSeconds = 30.5;
  plan.uniformSeconds = 34.0;
  plan.predictedAverageWatts = 64.8;
  plan.speedupVsUniform = 1.11;
  const core::BudgetPlan parsed =
      budgetPlanFromJson(Json::parse(budgetPlanToJson(plan).dump()));
  EXPECT_DOUBLE_EQ(parsed.simCapWatts, 90);
  EXPECT_DOUBLE_EQ(parsed.vizCapWatts, 50);
  EXPECT_DOUBLE_EQ(parsed.predictedSeconds, 30.5);
  EXPECT_DOUBLE_EQ(parsed.uniformSeconds, 34.0);
  EXPECT_DOUBLE_EQ(parsed.speedupVsUniform, 1.11);
}

// --- Cache keys -----------------------------------------------------------

TEST(Protocol, CacheKeyDistinguishesConfigs) {
  Request a;
  a.op = Op::Classify;
  a.algorithm = core::Algorithm::Contour;
  a.size = 64;
  a.capsWatts = {120, 60};
  Request b = a;
  EXPECT_EQ(canonicalCacheKey(a), canonicalCacheKey(b));
  b.size = 128;
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));
  b = a;
  b.capsWatts = {120, 40};
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));
  b = a;
  b.op = Op::Characterize;
  EXPECT_NE(canonicalCacheKey(a), canonicalCacheKey(b));
}

TEST(Protocol, CacheKeyIgnoresId) {
  Request a;
  a.op = Op::Characterize;
  a.algorithm = core::Algorithm::Slice;
  a.size = 32;
  Request b = a;
  a.id = "1";
  b.id = "2";
  EXPECT_EQ(canonicalCacheKey(a), canonicalCacheKey(b));
}

TEST(Protocol, UncacheableOpsHaveEmptyKey) {
  Request ping;
  ping.op = Op::Ping;
  EXPECT_TRUE(canonicalCacheKey(ping).empty());
  Request stats;
  stats.op = Op::Stats;
  EXPECT_TRUE(canonicalCacheKey(stats).empty());
}

}  // namespace
}  // namespace pviz::service
