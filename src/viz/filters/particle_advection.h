// Particle advection — trace massless particles through a vector field
// with fourth-order Runge–Kutta, emitting polylines.
//
// Per the paper: particles are seeded throughout the dataset and advected
// a fixed number of steps; particles leaving the bounding box terminate.
// Seed count, step length and step count are held constant regardless of
// dataset size (the paper's Phase 3 choice, which is what makes this
// algorithm's IPC insensitive to dataset size).
//
// Two tracing modes:
//   * streamline — steady flow: one vector field, integration time is a
//     pure parameter;
//   * pathline — unsteady flow across two pipeline time steps: the
//     velocity at integration time t ∈ [0, 1] is the linear blend of the
//     `begin` and `end` fields at each RK4 stage, and a particle
//     completes when it crosses t = 1.
//
// Two schedules over the same per-particle math (outputs bit-identical
// by construction — the schedule only decides who integrates which
// particle when):
//   * work-steal (default) — particles advance in batches of bounded
//     RK4 rounds through util::parallelWorkSteal; terminated lanes are
//     compacted out between rounds so batches stay dense, and idle
//     workers steal half-batches from busy ones.  This is the schedule
//     that survives early-termination-heavy seed sets, where static
//     chunking leaves the slowest chunk running alone.
//   * static-chunk — one contiguous particle span per worker, each
//     particle integrated to completion; the PR 3–7 era schedule, kept
//     as the comparison baseline for the flow benchmarks.
//
// Particle state lives in SoA pools and trajectories in chunked segment
// lists, both on the ExecutionContext ScratchArena; the final
// PolylineSet is written by a single exact-size gather.  Seeding is
// counter-based (seed i's position depends only on (rngSeed, i)), so
// million-seed setup parallelizes instead of walking one RNG serially.
#pragma once

#include "util/compat.h"

#include <cstdint>
#include <string>

#include "util/work_steal.h"
#include "viz/dataset/explicit_mesh.h"
#include "viz/dataset/uniform_grid.h"
#include "viz/worklet/work_profile.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::vis {

class ParticleAdvectionFilter {
 public:
  enum class Mode { Streamline, Pathline };
  enum class Schedule { WorkSteal, StaticChunk };

  struct Result {
    PolylineSet streamlines;      ///< traced lines (pathlines too)
    std::int64_t totalSteps = 0;  ///< RK4 steps actually taken
    std::int64_t terminated = 0;  ///< particles that left the domain
    std::int64_t completed = 0;   ///< pathline particles that reached t = 1
    util::WorkStealStats schedulerStats;  ///< timing-dependent; not output
    KernelProfile profile;
  };

  /// Zero seeds is a valid degenerate workload (empty PolylineSet with
  /// the canonical single-0 offsets array); the CLI tools reject it
  /// earlier because a zero-seed *study* is almost certainly a typo.
  void setSeedCount(Id seeds) {
    PVIZ_REQUIRE(seeds >= 0, "seed count must be non-negative");
    seeds_ = seeds;
  }
  void setMaxSteps(Id steps) {
    PVIZ_REQUIRE(steps >= 1, "need at least one step");
    maxSteps_ = steps;
  }
  void setStepLength(double h) {
    PVIZ_REQUIRE(h > 0.0, "step length must be positive");
    stepLength_ = h;
  }
  void setSeedRngSeed(std::uint64_t s) { rngSeed_ = s; }
  void setSchedule(Schedule s) { schedule_ = s; }
  /// Particles per steal batch (work-steal schedule only).
  void setBatchSize(Id particles) {
    PVIZ_REQUIRE(particles >= 1, "batch must hold at least one particle");
    batchSize_ = particles;
  }
  /// RK4 steps per round before terminated lanes are compacted out
  /// (work-steal schedule only).
  void setRoundSteps(Id steps) {
    PVIZ_REQUIRE(steps >= 1, "need at least one step per round");
    roundSteps_ = steps;
  }

  Id seedCount() const { return seeds_; }
  Id maxSteps() const { return maxSteps_; }
  double stepLength() const { return stepLength_; }
  Schedule schedule() const { return schedule_; }

  /// Streamline advection through point vector field `fieldName`
  /// (3 components).
  Result run(util::ExecutionContext& ctx, const UniformGrid& grid,
             const std::string& fieldName) const;

  /// Pathline advection across one time window: `beginField` is the
  /// velocity at t = 0, `endField` at t = 1 (both point vector fields on
  /// `grid`); stage velocities blend linearly in integration time.
  Result run(util::ExecutionContext& ctx, const UniformGrid& grid,
             const std::string& beginField, const std::string& endField) const;

  /// Compatibility shim: run on a fresh context over the global pool.
  PVIZ_CONTEXT_SHIM
  Result run(const UniformGrid& grid, const std::string& fieldName) const;

  /// Counter-based seed placement: seed `index`'s position depends only
  /// on (box, rngSeed, index), never on other seeds.  Exposed so tests
  /// and benchmarks can reason about individual seeds without
  /// materializing the pool.
  static Vec3 seedPosition(const Bounds& box, std::uint64_t rngSeed, Id index);

  static Mode parseMode(const std::string& token);
  static Schedule parseSchedule(const std::string& token);
  static const char* modeToken(Mode mode);
  static const char* scheduleToken(Schedule schedule);

 private:
  Id seeds_ = 1000;
  Id maxSteps_ = 1000;
  double stepLength_ = 0.001;
  std::uint64_t rngSeed_ = 42;
  Schedule schedule_ = Schedule::WorkSteal;
  Id batchSize_ = 256;
  Id roundSteps_ = 64;
};

}  // namespace pviz::vis
