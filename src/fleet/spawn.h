// Process-spawning helpers for fleet workers.
//
// A fleet worker is just a `powerviz_serve` process on an ephemeral
// port.  spawnServeWorker() fork/execs the binary with `--port 0`, pipes
// its stdout, and scrapes the "powerviz_serve listening port=NNNN"
// readiness banner — the same handshake the end-to-end tests use — so
// the caller gets back a (pid, port) pair it can register with the
// coordinator.  terminateWorker() is the graceful path (SIGTERM: the
// server drains its queue and exits 0); killWorkerHard() is SIGKILL, the
// chaos/failover path that leaves requests unanswered mid-flight.  Both
// reap the child, so no zombies accumulate across a test run.
#pragma once

#include <string>
#include <vector>

namespace pviz::fleet {

struct SpawnOptions {
  /// Path to the powerviz_serve binary.
  std::string serveBin;
  /// Extra argv entries after the implicit `--port 0` (e.g. "--light",
  /// "--cycles", "2", "--quiet").
  std::vector<std::string> args;
  /// How long to wait for the readiness banner before giving up and
  /// killing the child.
  int bannerTimeoutMs = 30000;
};

struct SpawnedWorker {
  long pid = -1;
  int port = 0;
  int stdoutFd = -1;  ///< the banner pipe; held open until termination
};

/// Fork/exec one worker and wait for its readiness banner.  Throws
/// pviz::Error (having reaped the child) when the spawn or the banner
/// fails.
SpawnedWorker spawnServeWorker(const SpawnOptions& options);

/// SIGTERM, wait for exit, reap, close the pipe.  Safe on an
/// already-dead or never-spawned worker.
void terminateWorker(SpawnedWorker& worker);

/// SIGKILL — no drain, in-flight requests die with the process.  Reaps
/// and closes like terminateWorker.
void killWorkerHard(SpawnedWorker& worker);

}  // namespace pviz::fleet
