// Future-work experiment (paper §VIII): how do the power/performance
// tradeoffs transfer to other architectures that provide power capping?
//
// The same characterized visualization workloads replayed on three
// modeled packages (Broadwell as in the study, a Skylake-SP-class part,
// an EPYC-class part).  The class structure — who tolerates caps, who
// does not — should be architecture-invariant even though the knees
// move with each machine's TDP and power balance.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pviz;

int main() {
  benchutil::printBanner(
      "Ablation — tradeoffs across cap-capable architectures",
      "Labasan et al., IPDPS'19, §VIII future work");

  core::StudyConfig config = benchutil::defaultStudyConfig();
  const vis::Id size = benchutil::envInt("PVIZ_SIZE", 64);
  core::Study study(config);

  const arch::MachineDescription machines[] = {
      arch::MachineDescription::broadwellE52695v4(),
      arch::MachineDescription::skylakeLike(),
      arch::MachineDescription::epycLike(),
  };

  for (const auto& machine : machines) {
    core::ExecutionSimulator simulator(machine, config.simulator);
    std::cout << '\n' << machine.name << " (TDP " << machine.tdpWatts
              << " W, floor " << machine.minCapWatts << " W, "
              << machine.cores << " cores @ " << machine.turboAllCoreGhz
              << " GHz)\n";
    util::TextTable table;
    table.setHeader({"Algorithm", "Draw(W)", "Tratio@75%", "Tratio@50%",
                     "Tratio@floor", "Class"});
    for (core::Algorithm algorithm : core::allAlgorithms()) {
      const vis::KernelProfile kernel = core::repeatKernel(
          core::scaleKernelWork(study.characterize(algorithm, size), 100.0),
          config.cycles);
      const core::Measurement base = simulator.run(kernel, machine.tdpWatts);
      auto ratioAt = [&](double frac) {
        const double cap = machine.minCapWatts +
                           frac * (machine.tdpWatts - machine.minCapWatts);
        return simulator.run(kernel, cap).seconds / base.seconds;
      };
      const double floorRatio = ratioAt(0.0);
      table.addRow({core::algorithmName(algorithm),
                    util::formatFixed(base.averageWatts, 1),
                    util::formatRatio(ratioAt(0.75)),
                    util::formatRatio(ratioAt(0.5)),
                    util::formatRatio(floorRatio),
                    floorRatio < 1.35 ? "power opportunity"
                                      : "power sensitive"});
    }
    table.print(std::cout);
  }
  std::cout << "\nexpected: the opportunity/sensitive split is the same on "
               "every machine; knees shift with TDP headroom\n";
  return 0;
}
