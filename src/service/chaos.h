// Fault-injection driver for the service layer: a raw TCP client with
// no protocol conveniences, built to misbehave on purpose.
//
// Where ServiceClient frames requests correctly and blocks politely,
// MisbehavingClient sends whatever bytes it is told, however slowly it
// is told to, and can vanish mid-frame (including with an RST rather
// than a FIN).  The chaos tests in test_service_server.cpp and the
// `--chaos` mode of bench/service_loadgen drive every robustness
// mechanism — frame-size limits, idle and stalled-frame deadlines,
// depth limits — through this class, so the scenarios exercised in CI
// are byte-identical to what a hostile client could send.
#pragma once

#include <cstddef>
#include <string>

namespace pviz::service {

class MisbehavingClient {
 public:
  /// Connect to host:port; throws pviz::Error on failure.
  MisbehavingClient(const std::string& host, int port);
  ~MisbehavingClient();

  MisbehavingClient(const MisbehavingClient&) = delete;
  MisbehavingClient& operator=(const MisbehavingClient&) = delete;

  /// Send raw bytes verbatim.  Returns false once the peer has closed
  /// (EPIPE/ECONNRESET) — chaos scenarios treat that as the server
  /// having cut the connection, not as a failure.
  bool sendRaw(const std::string& bytes);

  /// Slow-loris: send `bytes` in `chunkBytes`-sized pieces with
  /// `delayMs` between them.  Returns false as soon as the server cuts
  /// the connection (the expected outcome under a frame deadline).
  bool sendSlowly(const std::string& bytes, std::size_t chunkBytes,
                  int delayMs);

  /// Read one newline-terminated line, waiting at most `timeoutMs`.
  /// Returns the line without the newline; empty on timeout, EOF, or
  /// error (chaos assertions only ever check substrings).
  std::string readLine(int timeoutMs);

  /// Half-close: no more sends, reads still possible.
  void shutdownSend();

  /// Abortive close: SO_LINGER 0 makes close() send an RST, the rudest
  /// possible mid-frame disconnect.
  void closeAbruptly();

  /// Orderly close (FIN).
  void close();

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace pviz::service
