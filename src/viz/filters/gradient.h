// Gradient filter — central-difference gradient of a point scalar
// field, plus derived vector-magnitude and surface-normal utilities.
//
// Not one of the study's eight algorithms, but a staple of the VTK
// filter set the paper's future-work section asks to classify; its
// profile is a pure stencil sweep (streaming, low FP density), which
// the power advisor classifies as a power opportunity.
#pragma once

#include "util/compat.h"

#include <string>

#include "viz/dataset/uniform_grid.h"
#include "viz/worklet/work_profile.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::vis {

class GradientFilter {
 public:
  struct Result {
    Field gradient;  ///< 3-component point field "<name>-gradient"
    KernelProfile profile;
  };

  /// Central differences in the interior, one-sided at the boundary.
  Result run(util::ExecutionContext& ctx, const UniformGrid& grid,
             const std::string& fieldName) const;

  /// Compatibility shim: run on a fresh context over the global pool.
  PVIZ_CONTEXT_SHIM
  Result run(const UniformGrid& grid, const std::string& fieldName) const;
};

/// Per-point magnitude of a 3-component point field.
Field vectorMagnitude(const Field& vectors, const std::string& outputName);

}  // namespace pviz::vis
