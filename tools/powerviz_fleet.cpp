// powerviz_fleet — run the paper sweep sharded across a worker fleet.
//
//   powerviz_fleet --workers 4 --serve-bin ./powerviz_serve --light
//   powerviz_fleet --attach 127.0.0.1:7077,127.0.0.1:7078
//   powerviz_fleet --workers 4 --serve-bin ./powerviz_serve --light
//       --kill-one --lint --summary-json
//
// Two modes:
//   spawn (default)  fork --workers N powerviz_serve processes on
//                    ephemeral ports, run the sweep, terminate them
//   attach           drive already-running servers (--attach list);
//                    they are left running afterwards
//
// The merged report is bit-identical to what one server would return
// for the same scope (see src/fleet/coordinator.h).  --kill-one
// SIGKILLs a spawned worker mid-sweep to demonstrate failover: the
// sweep still completes, every unit exactly once.
#include <signal.h>

#include <cstdlib>
#include <iostream>
#include <thread>

#include "fleet/coordinator.h"
#include "fleet/spawn.h"
#include "telemetry/prometheus.h"
#include "util/error.h"
#include "util/fileio.h"
#include "util/log.h"
#include "util/options.h"

namespace {

using namespace pviz;

[[noreturn]] void usage(int exitCode) {
  std::cout <<
      R"(powerviz_fleet — shard a study sweep across powerviz_serve workers

usage: powerviz_fleet [options]

fleet:
  --workers N          workers to spawn (default 4)
  --serve-bin PATH     powerviz_serve binary to spawn (default: the
                       POWERVIZ_SERVE env var, else ./powerviz_serve)
  --attach LIST        attach to running servers instead of spawning:
                       comma-separated host:port endpoints
  --light              spawn workers with --light rendering (fast
                       characterizations; spawn mode only)
  --grain cap|pair     work-unit grain: one unit per (algorithm, size,
                       cap) cell or per (algorithm, size) row
                       (default cap)
  --hedge-ms N         duplicate a unit in flight longer than N ms onto
                       a second worker, first completion wins (0 = off)
  --retries N          dispatch reconnect attempts per request
                       (default 2)
  --timeout-ms N       per-read deadline on dispatch connections
                       (default 0 = none)

sweep scope (defaults = the paper's full 8×9×4 matrix):
  --algorithms a,b,...
  --sizes n,n,...
  --caps w,w,...
  --blocks n,n,...     multi-block k-slab counts, 1..4096 each: the
                       sweep gains an outermost block dimension (one
                       full study per count, concatenated).  Default:
                       worker-configured decomposition (no dimension).
  --cycles N           visualization cycles (default 10)

failure injection:
  --kill-one           SIGKILL one spawned worker mid-sweep
  --kill-after-ms N    delay before the kill (default 500)

output:
  --report PATH        write the merged study report JSON to PATH
  --metrics-out PATH   write the merged fleet Prometheus exposition
  --trace-out PATH     write the merged fleet Chrome trace (coordinator
                       dispatch spans + every worker's trace_dump
                       fragment, clock-corrected onto one timeline;
                       loads in Perfetto / chrome://tracing)
  --lint               lint the merged exposition; exit non-zero if it
                       is malformed
  --summary-json       print the fleet stats JSON (registry + sweep
                       counters) to stdout
  --quiet              suppress progress logging
)";
  std::exit(exitCode);
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 4;
  std::string serveBin;
  std::string attachList;
  bool light = false;
  bool killOne = false;
  int killAfterMs = 500;
  bool lint = false;
  bool summaryJson = false;
  std::string reportPath;
  std::string metricsOutPath;
  std::string traceOutPath;

  fleet::CoordinatorConfig config;
  std::vector<core::Algorithm> algorithms = core::allAlgorithms();
  core::StudyConfig defaults;
  std::vector<vis::Id> sizes = defaults.sizes;
  std::vector<double> caps = defaults.capsWatts;
  std::vector<vis::Id> blockCounts = {0};  // 0 = worker default
  int cycles = defaults.cycles;

  util::setDefaultLogLevel(util::LogLevel::Info);

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") usage(0);
      else if (arg == "--workers") workers = static_cast<int>(util::parseInt(next(), "--workers"));
      else if (arg == "--serve-bin") serveBin = next();
      else if (arg == "--attach") attachList = next();
      else if (arg == "--light") light = true;
      else if (arg == "--grain") config.grain = core::parseSweepGrainToken(next());
      else if (arg == "--hedge-ms") config.hedgeAfterMs = static_cast<int>(util::parseInt(next(), "--hedge-ms"));
      else if (arg == "--retries") config.clientRetries = static_cast<int>(util::parseInt(next(), "--retries"));
      else if (arg == "--timeout-ms") config.recvTimeoutMs = static_cast<int>(util::parseInt(next(), "--timeout-ms"));
      else if (arg == "--algorithms") algorithms = core::parseAlgorithmList(next());
      else if (arg == "--sizes") {
        sizes.clear();
        for (std::int64_t s : util::parseSizeList(next())) sizes.push_back(s);
      }
      else if (arg == "--caps") caps = util::parseCapList(next());
      else if (arg == "--blocks") {
        blockCounts.clear();
        for (std::int64_t b : util::parseSizeList(next())) {
          if (b < 1 || b > 4096) {
            std::cerr << "--blocks entries must be in [1, 4096], got " << b
                      << '\n';
            std::exit(2);
          }
          blockCounts.push_back(b);
        }
      }
      else if (arg == "--cycles") cycles = static_cast<int>(util::parseInt(next(), "--cycles"));
      else if (arg == "--kill-one") killOne = true;
      else if (arg == "--kill-after-ms") killAfterMs = static_cast<int>(util::parseInt(next(), "--kill-after-ms"));
      else if (arg == "--report") reportPath = next();
      else if (arg == "--metrics-out") metricsOutPath = next();
      else if (arg == "--trace-out") traceOutPath = next();
      else if (arg == "--lint") lint = true;
      else if (arg == "--summary-json") summaryJson = true;
      else if (arg == "--quiet") util::setLogLevel(util::LogLevel::Warn);
      else {
        std::cerr << "unknown option '" << arg << "'\n";
        usage(2);
      }
    }

    std::vector<fleet::SpawnedWorker> spawned;
    if (attachList.empty()) {
      // Spawn mode.
      if (serveBin.empty()) {
        const char* env = std::getenv("POWERVIZ_SERVE");
        serveBin = env != nullptr ? env : "./powerviz_serve";
      }
      PVIZ_REQUIRE(workers >= 1, "--workers must be >= 1");
      fleet::SpawnOptions spawnOptions;
      spawnOptions.serveBin = serveBin;
      spawnOptions.args = {"--quiet", "--cache", "none"};
      if (light) spawnOptions.args.push_back("--light");
      for (int w = 0; w < workers; ++w) {
        fleet::SpawnedWorker worker = fleet::spawnServeWorker(spawnOptions);
        PVIZ_LOG_INFO("spawned worker w" << w << " pid=" << worker.pid
                                         << " port=" << worker.port);
        fleet::FleetEndpoint endpoint;
        endpoint.name = "w" + std::to_string(w);
        endpoint.port = worker.port;
        endpoint.pid = worker.pid;
        config.endpoints.push_back(endpoint);
        spawned.push_back(worker);
      }
    } else {
      // Attach mode.
      PVIZ_REQUIRE(!killOne, "--kill-one needs spawn mode (we only kill "
                             "workers this process owns)");
      std::size_t index = 0;
      std::size_t start = 0;
      while (start <= attachList.size()) {
        std::size_t comma = attachList.find(',', start);
        if (comma == std::string::npos) comma = attachList.size();
        const std::string entry = attachList.substr(start, comma - start);
        start = comma + 1;
        if (entry.empty()) continue;
        const std::size_t colon = entry.rfind(':');
        PVIZ_REQUIRE(colon != std::string::npos,
                     "--attach entries are host:port, got '" + entry + "'");
        fleet::FleetEndpoint endpoint;
        endpoint.name = "w" + std::to_string(index++);
        endpoint.host = entry.substr(0, colon);
        endpoint.port = static_cast<int>(
            util::parseInt(entry.substr(colon + 1), "--attach port"));
        config.endpoints.push_back(endpoint);
      }
      PVIZ_REQUIRE(!config.endpoints.empty(), "--attach list is empty");
    }

    int exitCode = 0;
    std::thread killer;
    auto cleanup = [&] {
      if (killer.joinable()) killer.join();
      for (fleet::SpawnedWorker& worker : spawned) {
        fleet::terminateWorker(worker);
      }
    };
    try {
      fleet::Coordinator coordinator(config);
      coordinator.start();

      if (killOne && !spawned.empty()) {
        killer = std::thread([&] {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(killAfterMs));
          PVIZ_LOG_WARN("killing worker w0 pid=" << spawned[0].pid
                                                 << " (--kill-one)");
          fleet::killWorkerHard(spawned[0]);
        });
      }

      const service::Json report =
          coordinator.runSweep(algorithms, sizes, caps, blockCounts, cycles);
      if (killer.joinable()) killer.join();

      const fleet::FleetSweepStats stats = coordinator.lastSweepStats();
      PVIZ_LOG_INFO("sweep complete: "
                    << stats.records << " records from " << stats.units
                    << " units (" << stats.dispatches << " dispatches, "
                    << stats.cachedReplies << " cached, " << stats.reroutes
                    << " reroutes, " << stats.hedges << " hedges, "
                    << stats.duplicates << " duplicates, "
                    << stats.workersDead << " worker deaths)");

      if (!reportPath.empty()) {
        util::atomicWriteFile(reportPath, report.dump() + "\n");
        PVIZ_LOG_INFO("wrote " << reportPath);
      }
      if (lint || !metricsOutPath.empty()) {
        const std::string merged = coordinator.mergedMetrics();
        if (!metricsOutPath.empty()) {
          util::atomicWriteFile(metricsOutPath, merged);
          PVIZ_LOG_INFO("wrote " << metricsOutPath);
        }
        if (lint) {
          std::string error;
          if (!telemetry::lintPrometheus(merged, &error)) {
            std::cerr << "fleet metrics lint failed: " << error << '\n';
            exitCode = 1;
          } else {
            std::cerr << "fleet metrics lint: ok ("
                      << config.endpoints.size() << " workers merged)\n";
          }
        }
      }
      if (!traceOutPath.empty()) {
        const fleet::MergedTrace trace = coordinator.collectTrace();
        util::atomicWriteFile(traceOutPath,
                              fleet::mergedTraceToChromeJson(trace) + "\n");
        PVIZ_LOG_INFO("wrote " << traceOutPath << " (" << trace.spans.size()
                               << " spans from "
                               << trace.processNames.size()
                               << " processes)");
      }
      if (summaryJson) {
        std::cout << coordinator.statsJson().dump() << '\n';
      }
      coordinator.stop();
    } catch (...) {
      cleanup();
      throw;
    }
    cleanup();
    return exitCode;
  } catch (const pviz::Error& e) {
    std::cerr << "powerviz_fleet: " << e.what() << '\n';
    return 1;
  }
}
