// Blocking TCP client for the PowerViz service protocol.
//
// One connection, synchronous request/response: request() frames the
// JSON, writes the line, then reads response lines until the one whose
// id matches (the server may interleave responses to other requests on
// a shared connection; this client issues one request at a time, so in
// practice the first line is the answer).  Used by powerviz_client, the
// load generator, and the end-to-end tests.
//
// The read path mirrors the server's defenses: a response frame larger
// than Limits::maxFrameBytes throws instead of accumulating without
// bound, and an optional receive deadline keeps a hung or slow server
// from blocking the client forever.
#pragma once

#include <cstddef>
#include <string>

#include "service/protocol.h"

namespace pviz::service {

struct ClientLimits {
  /// Response frame bound.  Study responses are much larger than
  /// requests (one record per configuration), hence the generous
  /// default.
  std::size_t maxFrameBytes = 256u << 20;
  /// Receive deadline per read, in ms (0 = block indefinitely).
  int recvTimeoutMs = 0;
};

class ServiceClient {
 public:
  using Limits = ClientLimits;

  /// Connect to host:port; throws pviz::Error on failure.
  ServiceClient(const std::string& host, int port, Limits limits = {});
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Send one request and block for its response (matched by id; the
  /// client stamps an id when the request has none).
  Response request(Request req);

  /// Raw exchange: send `line`, return the next response line verbatim
  /// (no id matching).  For protocol tests and hand-written frames.
  std::string exchangeLine(const std::string& line);

  bool connected() const { return fd_ >= 0; }

 private:
  void writeAll(const std::string& frame);
  std::string readLine();  ///< blocks; throws on EOF/error

  int fd_ = -1;
  Limits limits_;
  std::string buffer_;
  unsigned nextId_ = 1;
};

}  // namespace pviz::service
