#include "service/metrics.h"

namespace pviz::service {

void ServiceMetrics::recordRequest(Op op, double latencyMs, bool cached,
                                   bool error) {
  std::lock_guard lock(mutex_);
  OpCounters& c = perOp_[static_cast<std::size_t>(op)];
  ++c.requests;
  if (error) ++c.errors;
  if (cached) ++c.cacheHits;
  c.latencyMs.add(latencyMs);
}

void ServiceMetrics::recordOverloaded() {
  std::lock_guard lock(mutex_);
  ++overloaded_;
}

void ServiceMetrics::recordBadRequest() {
  std::lock_guard lock(mutex_);
  ++badRequests_;
}

void ServiceMetrics::recordTimeout() {
  std::lock_guard lock(mutex_);
  ++timeouts_;
}

void ServiceMetrics::recordCancelled() {
  std::lock_guard lock(mutex_);
  ++cancelled_;
}

void ServiceMetrics::recordRejectedFrame() {
  std::lock_guard lock(mutex_);
  ++rejectedFrames_;
}

void ServiceMetrics::recordShedConnection() {
  std::lock_guard lock(mutex_);
  ++shedConnections_;
}

void ServiceMetrics::connectionOpened() {
  std::lock_guard lock(mutex_);
  ++connectionsAccepted_;
  ++connectionsActive_;
}

void ServiceMetrics::connectionClosed() {
  std::lock_guard lock(mutex_);
  if (connectionsActive_ > 0) --connectionsActive_;
}

void ServiceMetrics::recordQueueDepth(std::size_t depth) {
  std::lock_guard lock(mutex_);
  queueDepth_ = depth;
  maxQueueDepth_ = std::max(maxQueueDepth_, depth);
}

ServiceMetrics::Snapshot ServiceMetrics::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (std::size_t i = 0; i < perOp_.size(); ++i) {
    const OpCounters& c = perOp_[i];
    OpSnapshot& s = snap.perOp[i];
    s.requests = c.requests;
    s.errors = c.errors;
    s.cacheHits = c.cacheHits;
    s.meanLatencyMs = c.latencyMs.mean();
    s.maxLatencyMs = c.latencyMs.max();
    snap.totalRequests += c.requests;
  }
  snap.overloaded = overloaded_;
  snap.badRequests = badRequests_;
  snap.timeouts = timeouts_;
  snap.cancelled = cancelled_;
  snap.rejectedFrames = rejectedFrames_;
  snap.shedConnections = shedConnections_;
  snap.queueDepth = queueDepth_;
  snap.maxQueueDepth = maxQueueDepth_;
  snap.connectionsAccepted = connectionsAccepted_;
  snap.connectionsActive = connectionsActive_;
  return snap;
}

Json ServiceMetrics::toJson(const Snapshot& snapshot,
                            const ResultCache::Stats& cache) {
  Json ops = Json::object();
  for (std::size_t i = 0; i < snapshot.perOp.size(); ++i) {
    const OpSnapshot& s = snapshot.perOp[i];
    if (s.requests == 0) continue;
    Json op = Json::object();
    op.set("requests", static_cast<double>(s.requests));
    op.set("errors", static_cast<double>(s.errors));
    op.set("cache_hits", static_cast<double>(s.cacheHits));
    op.set("mean_latency_ms", s.meanLatencyMs);
    op.set("max_latency_ms", s.maxLatencyMs);
    ops.set(opToken(static_cast<Op>(i)), std::move(op));
  }

  Json cacheJson = Json::object();
  cacheJson.set("hits", static_cast<double>(cache.hits));
  cacheJson.set("misses", static_cast<double>(cache.misses));
  cacheJson.set("insertions", static_cast<double>(cache.insertions));
  cacheJson.set("evictions", static_cast<double>(cache.evictions));
  cacheJson.set("entries", static_cast<double>(cache.entries));
  cacheJson.set("bytes", static_cast<double>(cache.bytes));

  Json out = Json::object();
  out.set("total_requests", static_cast<double>(snapshot.totalRequests));
  out.set("overloaded", static_cast<double>(snapshot.overloaded));
  out.set("bad_requests", static_cast<double>(snapshot.badRequests));
  out.set("timeouts", static_cast<double>(snapshot.timeouts));
  out.set("cancelled", static_cast<double>(snapshot.cancelled));
  out.set("rejected_frames", static_cast<double>(snapshot.rejectedFrames));
  out.set("shed_connections", static_cast<double>(snapshot.shedConnections));
  out.set("queue_depth", static_cast<double>(snapshot.queueDepth));
  out.set("max_queue_depth", static_cast<double>(snapshot.maxQueueDepth));
  out.set("connections_accepted",
          static_cast<double>(snapshot.connectionsAccepted));
  out.set("connections_active",
          static_cast<double>(snapshot.connectionsActive));
  out.set("ops", std::move(ops));
  out.set("cache", std::move(cacheJson));
  return out;
}

}  // namespace pviz::service
