#include "telemetry/metric_registry.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace pviz::telemetry {

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool validLabelName(const std::string& name) {
  // Like a metric name but without ':'; "__" prefixes are reserved, and
  // "le" is the histogram bucket label the renderer appends itself.
  if (!validMetricName(name) || name.find(':') != std::string::npos) {
    return false;
  }
  return name != "le" && name.rfind("__", 0) != 0;
}

std::string serializeLabels(const Labels& labels) {
  std::ostringstream os;
  for (const auto& [key, value] : labels) os << key << '\x1f' << value << '\x1e';
  return os.str();
}

}  // namespace

// ---- Histogram ----------------------------------------------------------

double Histogram::bucketUpperBound(int i) noexcept {
  return kFirstUpperBound * static_cast<double>(std::uint64_t{1} << i);
}

int Histogram::bucketIndex(double value) noexcept {
  if (!(value > kFirstUpperBound)) return 0;  // also NaN and negatives
  // value = kFirstUpperBound * r with r > 1; the bucket is ceil(log2 r).
  int exponent = 0;
  const double mantissa = std::frexp(value / kFirstUpperBound, &exponent);
  // frexp: r = mantissa * 2^exponent, mantissa in [0.5, 1).  r is a power
  // of two exactly when mantissa == 0.5, in which case it sits on the
  // bucket boundary and belongs to the lower bucket (bounds are upper-
  // inclusive, Prometheus `le` semantics).
  const int index = mantissa == 0.5 ? exponent - 1 : exponent;
  return index >= kBucketCount ? kBucketCount : index;
}

std::uint64_t Histogram::toMicroUnits(double value) noexcept {
  if (!(value > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(value * 1e6));
}

std::uint64_t Histogram::toOrderedBits(double value) noexcept {
  if (!(value > 0.0)) return 0;
  return std::bit_cast<std::uint64_t>(value);
}

double Histogram::fromOrderedBits(std::uint64_t bits) noexcept {
  return bits == 0 ? 0.0 : std::bit_cast<double>(bits);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  std::uint64_t sumMicro = 0;
  std::uint64_t maxBits = 0;
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    sumMicro += s.sumMicro.load(std::memory_order_relaxed);
    maxBits = std::max(maxBits, s.maxBits.load(std::memory_order_relaxed));
  }
  for (std::uint64_t b : snap.buckets) snap.count += b;
  snap.sum = static_cast<double>(sumMicro) * 1e-6;
  snap.maxValue = fromOrderedBits(maxBits);
  return snap;
}

double Histogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Same rank convention as util::percentile over the sorted multiset.
  const double target = q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (target >= static_cast<double>(cumulative)) continue;
    if (b == kBucketCount) return maxValue;  // overflow bucket
    const double lo = b == 0 ? 0.0 : bucketUpperBound(static_cast<int>(b) - 1);
    const double hi = bucketUpperBound(static_cast<int>(b));
    const double frac =
        (target - before + 0.5) / static_cast<double>(buckets[b]);
    return std::min(lo + (hi - lo) * frac, maxValue);
  }
  return maxValue;
}

// ---- MetricRegistry -----------------------------------------------------

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Entry& MetricRegistry::entry(const std::string& name,
                                             const Labels& labels,
                                             const std::string& help,
                                             Kind kind) {
  PVIZ_REQUIRE(validMetricName(name),
               "invalid metric name '" + name + "'");
  for (const auto& [key, value] : labels) {
    PVIZ_REQUIRE(validLabelName(key),
                 "invalid label name '" + key + "' on metric '" + name + "'");
  }
  std::lock_guard lock(mutex_);
  auto [it, inserted] =
      metrics_.try_emplace({name, serializeLabels(labels)});
  Entry& e = it->second;
  if (inserted) {
    e.kind = kind;
    e.help = help;
    e.labels = labels;
    switch (kind) {
      case Kind::Counter:
        e.counter = std::unique_ptr<Counter>(new Counter());
        break;
      case Kind::Gauge:
        e.gauge = std::unique_ptr<Gauge>(new Gauge());
        break;
      case Kind::Histogram:
        e.histogram = std::unique_ptr<Histogram>(new Histogram());
        break;
    }
  } else {
    PVIZ_REQUIRE(e.kind == kind, "metric '" + name +
                                     "' already registered as a different "
                                     "kind");
  }
  return e;
}

Counter& MetricRegistry::counter(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  return *entry(name, labels, help, Kind::Counter).counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, const Labels& labels,
                             const std::string& help) {
  return *entry(name, labels, help, Kind::Gauge).gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help) {
  return *entry(name, labels, help, Kind::Histogram).histogram;
}

std::vector<MetricRegistry::Series> MetricRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<Series> out;
  out.reserve(metrics_.size());
  for (const auto& [key, e] : metrics_) {
    Series s;
    s.name = key.first;
    s.labels = e.labels;
    s.help = e.help;
    s.kind = e.kind;
    switch (e.kind) {
      case Kind::Counter:
        s.value = static_cast<double>(e.counter->value());
        break;
      case Kind::Gauge:
        s.value = e.gauge->value();
        break;
      case Kind::Histogram:
        s.hist = e.histogram->snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace pviz::telemetry
