// Ray tracing renderer tests.
#include <gtest/gtest.h>

#include "sim/cloverleaf.h"
#include "viz/rendering/ray_tracer.h"

namespace pviz::vis {
namespace {

UniformGrid dataset() { return sim::makeCloverField(12); }

TEST(RayTracer, RendersSomethingFromEveryOrbitCamera) {
  const UniformGrid g = dataset();
  RayTracer tracer;
  tracer.setImageSize(48, 48);
  tracer.setCameraCount(4);
  tracer.setKeepFirstImageOnly(false);
  const auto result = tracer.run(g, "energy");
  ASSERT_EQ(result.images.size(), 4u);
  for (const auto& image : result.images) {
    // The dataset fills a good chunk of the frame from every angle.
    EXPECT_GT(image.coveredPixels(), 48 * 48 / 8);
    EXPECT_LT(image.coveredPixels(), 48 * 48);  // background visible
  }
}

TEST(RayTracer, RayAndHitAccounting) {
  const UniformGrid g = dataset();
  RayTracer tracer;
  tracer.setImageSize(32, 24);
  tracer.setCameraCount(3);
  const auto result = tracer.run(g, "energy");
  EXPECT_EQ(result.raysTraced, 32 * 24 * 3);
  EXPECT_GT(result.raysHit, 0);
  EXPECT_LT(result.raysHit, result.raysTraced);
}

TEST(RayTracer, TriangleCountMatchesExternalFaces) {
  const UniformGrid g = dataset();  // 12^3 cells
  RayTracer tracer;
  tracer.setImageSize(8, 8);
  tracer.setCameraCount(1);
  const auto result = tracer.run(g, "energy");
  EXPECT_EQ(result.trianglesRendered, 2 * 6 * 12 * 12);
}

TEST(RayTracer, KeepFirstImageOnlyBoundsMemory) {
  const UniformGrid g = dataset();
  RayTracer tracer;
  tracer.setImageSize(16, 16);
  tracer.setCameraCount(5);
  const auto result = tracer.run(g, "energy");  // default keep-first
  EXPECT_EQ(result.images.size(), 1u);
  EXPECT_EQ(result.raysTraced, 16 * 16 * 5);  // all cameras still traced
}

TEST(RayTracer, HitPixelsAreOpaqueMissesTransparent) {
  const UniformGrid g = dataset();
  RayTracer tracer;
  tracer.setImageSize(40, 40);
  tracer.setCameraCount(1);
  const auto result = tracer.run(g, "energy");
  const Image& image = result.images.front();
  std::int64_t opaque = 0;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const Color& c = image.at(x, y);
      ASSERT_TRUE(c.a == 0.0 || c.a == 1.0);
      if (c.a == 1.0) ++opaque;
    }
  }
  EXPECT_EQ(opaque, result.raysHit);
}

TEST(RayTracer, ProfileHasFourPhasesWithRealCounts) {
  const UniformGrid g = dataset();
  RayTracer tracer;
  tracer.setImageSize(24, 24);
  tracer.setCameraCount(2);
  const auto result = tracer.run(g, "energy");
  ASSERT_EQ(result.profile.phases.size(), 3u);
  EXPECT_EQ(result.profile.phases[0].name, "gather-external-faces");
  EXPECT_EQ(result.profile.phases[1].name, "bvh-build");
  EXPECT_EQ(result.profile.phases[2].name, "trace");
  for (const auto& phase : result.profile.phases) {
    EXPECT_GT(phase.instructions(), 0.0) << phase.name;
  }
  EXPECT_EQ(result.profile.elements, g.numCells());
}

TEST(RayTracer, ValidatesParameters) {
  RayTracer tracer;
  EXPECT_THROW(tracer.setImageSize(0, 5), Error);
  EXPECT_THROW(tracer.setCameraCount(0), Error);
}

TEST(RayTracer, DeterministicImages) {
  const UniformGrid g = dataset();
  RayTracer tracer;
  tracer.setImageSize(20, 20);
  tracer.setCameraCount(1);
  const auto a = tracer.run(g, "energy");
  const auto b = tracer.run(g, "energy");
  const Color ca = a.images.front().average();
  const Color cb = b.images.front().average();
  EXPECT_EQ(ca.r, cb.r);
  EXPECT_EQ(ca.g, cb.g);
  EXPECT_EQ(a.raysHit, b.raysHit);
}

}  // namespace
}  // namespace pviz::vis
