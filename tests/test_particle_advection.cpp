// Particle advection (RK4 streamline) tests.
#include <gtest/gtest.h>

#include <cmath>

#include "util/exec_context.h"
#include "viz/filters/particle_advection.h"

namespace pviz::vis {
namespace {

UniformGrid constantFlow(Id cells, Vec3 v) {
  UniformGrid g = UniformGrid::cube(cells);
  Field f = Field::zeros("velocity", Association::Points, 3, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) f.setVec3(p, v);
  g.addField(std::move(f));
  return g;
}

// Rigid rotation about the domain center in the x-y plane.
UniformGrid rotationFlow(Id cells) {
  UniformGrid g = UniformGrid::cube(cells);
  Field f = Field::zeros("velocity", Association::Points, 3, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) {
    const Vec3 pos = g.pointPosition(p) - Vec3{0.5, 0.5, 0.5};
    f.setVec3(p, {-pos.y, pos.x, 0.0});
  }
  g.addField(std::move(f));
  return g;
}

TEST(ParticleAdvection, ZeroFieldParticlesStayPut) {
  const UniformGrid g = constantFlow(6, {0, 0, 0});
  ParticleAdvectionFilter filter;
  filter.setSeedCount(20);
  filter.setMaxSteps(50);
  const auto result = filter.run(g, "velocity");
  EXPECT_EQ(result.streamlines.numLines(), 20);
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id last =
        result.streamlines.offsets[static_cast<std::size_t>(l) + 1] - 1;
    const Vec3 d = result.streamlines.points[static_cast<std::size_t>(last)] -
                   result.streamlines.points[static_cast<std::size_t>(first)];
    ASSERT_NEAR(length(d), 0.0, 1e-12);
  }
}

TEST(ParticleAdvection, ConstantFlowGivesStraightLinesOfExactLength) {
  const Vec3 v{0.3, 0.1, 0.05};
  const UniformGrid g = constantFlow(8, v);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(10);
  filter.setMaxSteps(40);
  filter.setStepLength(0.01);
  const auto result = filter.run(g, "velocity");
  // For a constant field, RK4 moves exactly h*v per step.
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id count = result.streamlines.lineSize(l);
    for (Id k = 1; k < count; ++k) {
      const Vec3 step =
          result.streamlines.points[static_cast<std::size_t>(first + k)] -
          result.streamlines.points[static_cast<std::size_t>(first + k - 1)];
      ASSERT_NEAR(step.x, v.x * 0.01, 1e-12);
      ASSERT_NEAR(step.y, v.y * 0.01, 1e-12);
      ASSERT_NEAR(step.z, v.z * 0.01, 1e-12);
    }
  }
}

TEST(ParticleAdvection, RotationKeepsRadiusInvariant) {
  const UniformGrid g = rotationFlow(32);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(50);
  filter.setMaxSteps(200);
  filter.setStepLength(0.01);
  const auto result = filter.run(g, "velocity");
  // RK4 on a rigid rotation preserves radius to high order; verify the
  // first few hundred steps keep |r| within a tight tolerance.
  Id checked = 0;
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id count = result.streamlines.lineSize(l);
    if (count < 10) continue;
    const Vec3 c{0.5, 0.5, 0.5};
    const Vec3 p0 =
        result.streamlines.points[static_cast<std::size_t>(first)] - c;
    const double r0 = std::hypot(p0.x, p0.y);
    if (r0 < 0.05) continue;
    for (Id k = 0; k < count; ++k) {
      const Vec3 p =
          result.streamlines.points[static_cast<std::size_t>(first + k)] - c;
      ASSERT_NEAR(std::hypot(p.x, p.y), r0, r0 * 0.02 + 2e-3);
      ++checked;
    }
  }
  EXPECT_GT(checked, 500);
}

TEST(ParticleAdvection, OutflowTerminatesParticles) {
  const UniformGrid g = constantFlow(8, {1.0, 0, 0});
  ParticleAdvectionFilter filter;
  filter.setSeedCount(30);
  filter.setMaxSteps(100000);
  filter.setStepLength(0.01);
  const auto result = filter.run(g, "velocity");
  // Everything flows out the +x face long before the step limit.
  EXPECT_EQ(result.terminated, 30);
  EXPECT_LT(result.totalSteps, 30 * 120);
  for (const auto& p : result.streamlines.points) {
    ASSERT_LE(p.x, 1.0 + 1e-9);
  }
}

TEST(ParticleAdvection, DeterministicAcrossRuns) {
  const UniformGrid g = rotationFlow(12);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(25);
  filter.setMaxSteps(60);
  const auto a = filter.run(g, "velocity");
  const auto b = filter.run(g, "velocity");
  ASSERT_EQ(a.streamlines.points.size(), b.streamlines.points.size());
  for (std::size_t i = 0; i < a.streamlines.points.size(); ++i) {
    ASSERT_EQ(a.streamlines.points[i], b.streamlines.points[i]);
  }
  EXPECT_EQ(a.totalSteps, b.totalSteps);
}

TEST(ParticleAdvection, SeedRngChangesSeeds) {
  const UniformGrid g = rotationFlow(12);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(5);
  filter.setMaxSteps(5);
  const auto a = filter.run(g, "velocity");
  filter.setSeedRngSeed(777);
  const auto b = filter.run(g, "velocity");
  EXPECT_FALSE(a.streamlines.points[0] == b.streamlines.points[0]);
}

TEST(ParticleAdvection, ScalarsRecordIntegrationTime) {
  const UniformGrid g = constantFlow(8, {0.5, 0, 0});
  ParticleAdvectionFilter filter;
  filter.setSeedCount(3);
  filter.setMaxSteps(10);
  filter.setStepLength(0.002);
  const auto result = filter.run(g, "velocity");
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    const Id first = result.streamlines.offsets[static_cast<std::size_t>(l)];
    const Id count = result.streamlines.lineSize(l);
    for (Id k = 0; k < count; ++k) {
      ASSERT_NEAR(
          result.streamlines.pointScalars[static_cast<std::size_t>(first + k)],
          static_cast<double>(k) * 0.002, 1e-12);
    }
  }
}

TEST(ParticleAdvection, ValidatesParameters) {
  ParticleAdvectionFilter filter;
  EXPECT_THROW(filter.setSeedCount(-1), Error);
  EXPECT_NO_THROW(filter.setSeedCount(0));  // degenerate but valid
  EXPECT_THROW(filter.setMaxSteps(0), Error);
  EXPECT_THROW(filter.setStepLength(0.0), Error);
  UniformGrid g = UniformGrid::cube(2);
  g.addField(Field::zeros("s", Association::Points, 1, g.numPoints()));
  EXPECT_THROW(filter.run(g, "s"), Error);
}

TEST(ParticleAdvection, ZeroSeedsYieldCanonicalEmptyPolylineSet) {
  // Zero seeds is the degenerate-but-valid floor of the flow workload
  // axis: the run completes, and the output is the one canonical empty
  // PolylineSet (single sentinel offset, no points, no scalars) so that
  // downstream writers and the service cache see a stable shape.
  const UniformGrid g = rotationFlow(8);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(0);
  filter.setMaxSteps(30);
  const auto result = filter.run(g, "velocity");
  EXPECT_EQ(result.streamlines.numLines(), 0);
  EXPECT_EQ(result.streamlines.offsets, (std::vector<Id>{0}));
  EXPECT_TRUE(result.streamlines.points.empty());
  EXPECT_TRUE(result.streamlines.pointScalars.empty());
  EXPECT_EQ(result.totalSteps, 0);

  // Same shape on every schedule — no worker ever claims a particle.
  filter.setSchedule(ParticleAdvectionFilter::Schedule::StaticChunk);
  const auto stat = filter.run(g, "velocity");
  EXPECT_EQ(stat.streamlines.offsets, (std::vector<Id>{0}));
}

TEST(ParticleAdvection, SingleSeedTracesExactlyOneLine) {
  const UniformGrid g = rotationFlow(8);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(1);
  filter.setMaxSteps(30);
  const auto result = filter.run(g, "velocity");
  ASSERT_EQ(result.streamlines.numLines(), 1);
  ASSERT_EQ(result.streamlines.offsets.size(), 2u);
  EXPECT_EQ(result.streamlines.offsets[0], 0);
  EXPECT_EQ(result.streamlines.offsets[1],
            static_cast<Id>(result.streamlines.points.size()));
  EXPECT_GT(result.streamlines.points.size(), 1u);
  EXPECT_EQ(result.streamlines.pointScalars.size(),
            result.streamlines.points.size());

  // A repeat run reproduces the identical line (counter-based seeding).
  const auto again = filter.run(g, "velocity");
  EXPECT_EQ(again.streamlines.offsets, result.streamlines.offsets);
  for (std::size_t i = 0; i < result.streamlines.points.size(); ++i) {
    EXPECT_EQ(again.streamlines.points[i], result.streamlines.points[i]);
  }
}

TEST(ParticleAdvection, ProfileCountsTrackSteps) {
  const UniformGrid g = rotationFlow(10);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(40);
  filter.setMaxSteps(30);
  const auto result = filter.run(g, "velocity");
  EXPECT_EQ(result.profile.kernel, "particle-advection");
  EXPECT_GT(result.totalSteps, 0);
  // Advection flops scale linearly with the steps actually taken.
  const auto& advect = result.profile.phases.front();
  EXPECT_DOUBLE_EQ(advect.flops,
                   static_cast<double>(result.totalSteps) * (4 * 158 + 56));
}

TEST(ParticleAdvection, StaticScheduleMatchesWorkSteal) {
  const UniformGrid g = rotationFlow(10);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(50);
  filter.setMaxSteps(60);
  const auto worksteal = filter.run(g, "velocity");
  filter.setSchedule(ParticleAdvectionFilter::Schedule::StaticChunk);
  const auto stat = filter.run(g, "velocity");
  EXPECT_EQ(worksteal.totalSteps, stat.totalSteps);
  EXPECT_EQ(worksteal.terminated, stat.terminated);
  ASSERT_EQ(worksteal.streamlines.points.size(), stat.streamlines.points.size());
  EXPECT_EQ(worksteal.streamlines.offsets, stat.streamlines.offsets);
  for (std::size_t i = 0; i < worksteal.streamlines.points.size(); ++i) {
    EXPECT_EQ(worksteal.streamlines.points[i], stat.streamlines.points[i]);
  }
}

TEST(ParticleAdvection, PathlineIdenticalFieldsMatchStreamline) {
  // With both window endpoints equal, the blend is the steady field at
  // every stage — pathlines must retrace the streamlines, up to the
  // t = 1 completion cutoff (avoided here: maxSteps*h < 1).  The match
  // is within rounding, not bitwise: the blend v0*(1-tt) + v1*tt with
  // v0 == v1 perturbs the last bit for tt > 0.
  UniformGrid g = rotationFlow(10);
  g.addField(Field("velocity2", Association::Points, 3,
                   g.field("velocity").data()));
  ParticleAdvectionFilter filter;
  filter.setSeedCount(30);
  filter.setMaxSteps(40);
  filter.setStepLength(0.01);  // 40 steps cover t ∈ [0, 0.4]
  util::ExecutionContext ctx;
  const auto stream = filter.run(ctx, g, "velocity");
  const auto path = filter.run(ctx, g, "velocity", "velocity2");
  EXPECT_EQ(path.completed, 0);
  ASSERT_EQ(path.streamlines.points.size(), stream.streamlines.points.size());
  EXPECT_EQ(path.streamlines.offsets, stream.streamlines.offsets);
  for (std::size_t i = 0; i < stream.streamlines.points.size(); ++i) {
    EXPECT_NEAR(path.streamlines.points[i].x, stream.streamlines.points[i].x,
                1e-9);
    EXPECT_NEAR(path.streamlines.points[i].y, stream.streamlines.points[i].y,
                1e-9);
    EXPECT_NEAR(path.streamlines.points[i].z, stream.streamlines.points[i].z,
                1e-9);
  }
}

TEST(ParticleAdvection, PathlineCompletesAtWindowEnd) {
  // Zero flow both ends: nothing terminates, so every particle crosses
  // t = 1 after exactly ceil(1/h) steps and stops there.
  UniformGrid g = constantFlow(6, {0, 0, 0});
  g.addField(Field("velocity2", Association::Points, 3,
                   g.field("velocity").data()));
  ParticleAdvectionFilter filter;
  filter.setSeedCount(15);
  filter.setMaxSteps(500);
  filter.setStepLength(0.04);  // 25 steps to t = 1
  util::ExecutionContext ctx;
  const auto result = filter.run(ctx, g, "velocity", "velocity2");
  EXPECT_EQ(result.completed, 15);
  EXPECT_EQ(result.terminated, 0);
  EXPECT_EQ(result.totalSteps, 15 * 25);
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    EXPECT_EQ(result.streamlines.lineSize(l), 26);
  }
}

TEST(ParticleAdvection, PathlineBlendsTheTwoFields) {
  // Constant v0 at t=0, constant v1 at t=1: the blended velocity at the
  // RK4 stages differs from either endpoint, so the pathline must leave
  // the straight streamline track of both.
  UniformGrid g = constantFlow(8, {0.3, 0.0, 0.0});
  Field f1 = Field::zeros("velocity2", Association::Points, 3, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) f1.setVec3(p, {0.0, 0.3, 0.0});
  g.addField(std::move(f1));
  ParticleAdvectionFilter filter;
  filter.setSeedCount(5);
  filter.setMaxSteps(100);
  filter.setStepLength(0.02);
  util::ExecutionContext ctx;
  const auto result = filter.run(ctx, g, "velocity", "velocity2");
  // Early in the window velocity ≈ (0.3, 0, 0); late ≈ (0, 0.3, 0).
  // Each surviving line must therefore bend: displacement in both x
  // and y for any particle that integrated most of the window.
  bool sawBend = false;
  for (Id l = 0; l < result.streamlines.numLines(); ++l) {
    if (result.streamlines.lineSize(l) < 40) continue;
    const auto first =
        static_cast<std::size_t>(result.streamlines.offsets[l]);
    const auto last = static_cast<std::size_t>(
        result.streamlines.offsets[l + 1] - 1);
    const Vec3 d = result.streamlines.points[last] -
                   result.streamlines.points[first];
    EXPECT_GT(d.x, 0.0);
    EXPECT_GT(d.y, 0.0);
    sawBend = true;
  }
  EXPECT_TRUE(sawBend);
}

TEST(ParticleAdvection, CounterBasedSeedingIsPerIndex) {
  const Bounds box{{0, 0, 0}, {1, 2, 3}};
  const Vec3 a = ParticleAdvectionFilter::seedPosition(box, 42, 7);
  // Same (seed, index) → same position; different index or seed → moved.
  EXPECT_EQ(a, ParticleAdvectionFilter::seedPosition(box, 42, 7));
  EXPECT_NE(a, ParticleAdvectionFilter::seedPosition(box, 42, 8));
  EXPECT_NE(a, ParticleAdvectionFilter::seedPosition(box, 43, 7));
  EXPECT_TRUE(box.contains(a));
}

TEST(ParticleAdvection, ParsesModeAndScheduleTokens) {
  using Filter = ParticleAdvectionFilter;
  EXPECT_EQ(Filter::parseMode("streamline"), Filter::Mode::Streamline);
  EXPECT_EQ(Filter::parseMode("pathline"), Filter::Mode::Pathline);
  EXPECT_EQ(Filter::parseSchedule("worksteal"), Filter::Schedule::WorkSteal);
  EXPECT_EQ(Filter::parseSchedule("static"), Filter::Schedule::StaticChunk);
  EXPECT_STREQ(Filter::modeToken(Filter::Mode::Pathline), "pathline");
  EXPECT_STREQ(Filter::scheduleToken(Filter::Schedule::StaticChunk), "static");
  EXPECT_THROW(Filter::parseMode("spiral"), Error);
  EXPECT_THROW(Filter::parseSchedule("greedy"), Error);
}

}  // namespace
}  // namespace pviz::vis
