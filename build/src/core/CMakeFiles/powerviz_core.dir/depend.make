# Empty dependencies file for powerviz_core.
# This may be replaced when dependencies are built.
