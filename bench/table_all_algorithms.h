// Shared implementation of Tables II and III: Tratio and Fratio for all
// eight algorithms across the cap sweep at one dataset size, with the
// paper's first->=10%-slowdown highlight.
#pragma once

#include <iostream>

#include "bench_common.h"
#include "core/metrics.h"
#include "util/table.h"

namespace pviz::benchutil {

inline int runAllAlgorithmsTable(vis::Id size) {
  core::StudyConfig config = defaultStudyConfig();
  core::Study study(config);

  util::TextTable table;
  {
    std::vector<std::string> header = {"Algorithm", "Ratio"};
    for (double cap : config.capsWatts) {
      header.push_back(util::formatFixed(cap, 0) + "W");
    }
    table.setHeader(std::move(header));
  }
  {
    std::vector<std::string> row = {"", "Pratio"};
    for (double cap : config.capsWatts) {
      row.push_back(util::formatRatio(config.capsWatts.front() / cap));
    }
    table.addRow(std::move(row));
  }

  for (core::Algorithm algorithm : core::allAlgorithms()) {
    const auto sweep = study.capSweep(algorithm, size);
    std::vector<double> tRatios, fRatios;
    for (const auto& r : sweep) {
      tRatios.push_back(r.ratios.tRatio);
      fRatios.push_back(r.ratios.fRatio);
    }
    const int tKnee = core::firstSlowdownIndex(tRatios);
    const int fKnee = core::firstSlowdownIndex(fRatios);

    std::vector<std::string> tRow = {core::algorithmName(algorithm),
                                     "Tratio"};
    std::vector<std::string> fRow = {"", "Fratio"};
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      tRow.push_back(util::formatRatio(tRatios[i],
                                       tKnee == static_cast<int>(i)));
      fRow.push_back(util::formatRatio(fRatios[i],
                                       fKnee == static_cast<int>(i)));
    }
    table.addRow(std::move(tRow));
    table.addRow(std::move(fRow));
  }
  table.print(std::cout);
  std::cout << "\n'*' marks the first cap with a >=10% degradation (the "
               "paper's red highlight)\n";
  return 0;
}

}  // namespace pviz::benchutil
