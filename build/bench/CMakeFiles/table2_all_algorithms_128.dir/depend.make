# Empty dependencies file for table2_all_algorithms_128.
# This may be replaced when dependencies are built.
