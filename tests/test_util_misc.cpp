// Stats, RNG, tables, logging, error-handling utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace pviz::util {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({10.0}, 0.7), 10.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), Error);
  EXPECT_THROW(percentile({1.0}, 1.5), Error);
  EXPECT_THROW(percentile({1.0}, -0.1), Error);
}

TEST(ApproxEqual, Basics) {
  EXPECT_TRUE(approxEqual(1.0, 1.0));
  EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approxEqual(1.0, 1.001));
  EXPECT_TRUE(approxEqual(1.0, 1.001, 1e-2));
  EXPECT_TRUE(approxEqual(0.0, 0.0));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(99);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(17);
    ASSERT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues reached
}

// Chi-squared goodness-of-fit for below() on a non-power-of-two bound.
// 13 buckets, 130k draws: under uniformity the statistic is chi²(12),
// whose 99.9th percentile is 32.9 — a deterministic seed keeps this
// reproducible rather than flaky.
TEST(Rng, BelowIsUniformChiSquared) {
  constexpr std::uint64_t kBuckets = 13;
  constexpr int kDraws = 130000;
  Rng rng(2024);
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(kBuckets))];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int observed : counts) {
    const double d = observed - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 32.9) << "below(13) deviates from uniform";
}

// Regression for the missing Lemire rejection step.  For n = 3·2^62 the
// bare multiply-shift maps half of all 64-bit inputs onto outputs that
// are ≡ 0 (mod 3) (every third output value gets two preimages instead
// of one), so P(v % 3 == 0) was 1/2 instead of 1/3 — detectable with a
// few thousand draws.  With the rejection loop the residues are exactly
// equiprobable.
TEST(Rng, BelowLargeBoundIsUnbiased) {
  constexpr std::uint64_t kBound = 3ull << 62;
  constexpr int kDraws = 30000;
  Rng rng(7);
  int residues[3] = {0, 0, 0};
  for (int i = 0; i < kDraws; ++i) {
    ++residues[static_cast<std::size_t>(rng.below(kBound) % 3)];
  }
  const double expected = kDraws / 3.0;
  double chi2 = 0.0;
  for (int observed : residues) {
    const double d = observed - expected;
    chi2 += d * d / expected;
  }
  // chi²(2) 99.9th percentile = 13.8; the pre-fix bias scores ~7500.
  EXPECT_LT(chi2, 13.8) << "residue counts " << residues[0] << "/"
                        << residues[1] << "/" << residues[2];
}

TEST(Rng, BelowDeterministicForSameSeed) {
  Rng a(555), b(555);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.below(1000003), b.below(1000003));
  }
}

TEST(TextTable, AlignsAndCounts) {
  TextTable t;
  t.setHeader({"A", "LongColumn"});
  t.addRow({"xx", "1"});
  t.addRow({"y", "22"});
  EXPECT_EQ(t.rowCount(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("LongColumn"), std::string::npos);
  EXPECT_NE(out.find("xx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t;
  t.setHeader({"A", "B"});
  EXPECT_THROW(t.addRow({"only-one"}), Error);
}

TEST(TextTable, RejectsHeaderAfterRows) {
  TextTable t;
  t.setHeader({"A"});
  t.addRow({"1"});
  EXPECT_THROW(t.setHeader({"B"}), Error);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.writeRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(Format, FixedAndRatio) {
  EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
  EXPECT_EQ(formatFixed(120.0, 0), "120");
  EXPECT_EQ(formatRatio(1.174), "1.17X");
  EXPECT_EQ(formatRatio(1.1, true), "1.10X*");
}

TEST(Log, LevelGateWorks) {
  const LogLevel old = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  PVIZ_LOG_DEBUG("should not crash");
  setLogLevel(old);
}

TEST(ErrorMacros, RequireThrowsWithMessage) {
  try {
    PVIZ_REQUIRE(1 == 2, "custom context");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(WallTimer, AdvancesMonotonically) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace pviz::util
