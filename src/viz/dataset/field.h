// Named data arrays attached to a mesh, VTK-style.
//
// A Field is an association (points or cells), a component count (1 for
// scalars, 3 for vectors), and a flat double array in SoA-of-tuples
// layout: component index varies fastest.
#pragma once

#include <string>
#include <vector>

#include "util/error.h"
#include "viz/types.h"

namespace pviz::vis {

enum class Association { Points, Cells };

class Field {
 public:
  Field() = default;
  Field(std::string name, Association assoc, int components,
        std::vector<double> data)
      : name_(std::move(name)),
        assoc_(assoc),
        components_(components),
        data_(std::move(data)) {
    PVIZ_REQUIRE(components_ >= 1, "field needs at least one component");
    PVIZ_REQUIRE(data_.size() % static_cast<std::size_t>(components_) == 0,
                 "field data size must be a multiple of component count");
  }

  /// Construct an uninitialized scalar/vector field of `count` tuples.
  static Field zeros(std::string name, Association assoc, int components,
                     Id count) {
    return Field(std::move(name), assoc, components,
                 std::vector<double>(static_cast<std::size_t>(count) *
                                     static_cast<std::size_t>(components)));
  }

  const std::string& name() const { return name_; }
  Association association() const { return assoc_; }
  int components() const { return components_; }
  Id count() const {
    return static_cast<Id>(data_.size()) / components_;
  }

  double value(Id tuple, int component = 0) const {
    return data_[static_cast<std::size_t>(tuple) * components_ + component];
  }
  void setValue(Id tuple, int component, double v) {
    data_[static_cast<std::size_t>(tuple) * components_ + component] = v;
  }
  void setScalar(Id tuple, double v) { setValue(tuple, 0, v); }

  Vec3 vec3(Id tuple) const {
    PVIZ_ASSERT(components_ == 3);
    const std::size_t base = static_cast<std::size_t>(tuple) * 3;
    return {data_[base], data_[base + 1], data_[base + 2]};
  }
  void setVec3(Id tuple, const Vec3& v) {
    PVIZ_ASSERT(components_ == 3);
    const std::size_t base = static_cast<std::size_t>(tuple) * 3;
    data_[base] = v.x;
    data_[base + 1] = v.y;
    data_[base + 2] = v.z;
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// [min, max] over the first component; {0,0} for empty fields.
  std::pair<double, double> range() const;

  /// Bytes held by the data array (used by the traffic model).
  double sizeBytes() const {
    return static_cast<double>(data_.size() * sizeof(double));
  }

 private:
  std::string name_;
  Association assoc_ = Association::Points;
  int components_ = 1;
  std::vector<double> data_;
};

}  // namespace pviz::vis
