// External face extraction + triangulation.
//
// The paper's ray tracing measurement includes "the time to gather
// triangles and find external faces" and notes those data-intensive
// passes dominate the compute-intensive trace.  Finding external faces
// means scanning every cell and testing each of its six faces for a
// missing neighbor — an O(cells) streaming pass whose output is only
// O(cells^(2/3)) triangles, which is also why the paper sees triangle
// counts grow 4X when cells grow 8X.
#pragma once

#include "util/compat.h"

#include <string>

#include "viz/dataset/explicit_mesh.h"
#include "viz/dataset/uniform_grid.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::vis {

struct ExternalFacesResult {
  TriangleMesh mesh;            ///< 2 triangles per external quad face
  std::int64_t cellsScanned = 0;
  std::int64_t facesFound = 0;
};

/// Extract and triangulate the external faces of `grid`, carrying point
/// scalar `fieldName` onto the output vertices.
ExternalFacesResult extractExternalFaces(util::ExecutionContext& ctx,
                                         const UniformGrid& grid,
                                         const std::string& fieldName);

/// Compatibility shim: run on a fresh context over the global pool.
PVIZ_CONTEXT_SHIM
ExternalFacesResult extractExternalFaces(const UniformGrid& grid,
                                         const std::string& fieldName);

}  // namespace pviz::vis
