// Prometheus text exposition format (version 0.0.4) rendering and a
// structural linter for it.
//
// renderPrometheus() turns a MetricRegistry snapshot into the scrapeable
// text format: `# HELP` / `# TYPE` headers per metric family, one sample
// line per series, and for histograms the cumulative `_bucket{le=...}`
// ladder plus `_sum` and `_count`.  lintPrometheus() re-parses that text
// and checks the invariants a real Prometheus server enforces (line
// structure, bucket monotonicity, `+Inf` == `_count`, `_sum`/`_count`
// presence) — it backs the CI scrape check and powerviz_client --lint.
//
// parsePrometheus() is the renderer's inverse: it turns exposition text
// back into MetricRegistry::Series — histograms are reconstructed from
// their full `le` ladder into a Histogram::Snapshot (the one lossy
// field is the per-histogram max, which the text format does not
// carry).  mergeExpositions() builds on it: the fleet coordinator
// scrapes each worker's `metrics` op, tags every series with a
// `worker` label, and re-renders the union as one fleet-wide
// exposition, so the merged view flows through the same snapshot/render
// machinery as a single process.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "telemetry/metric_registry.h"

namespace pviz::telemetry {

/// Render a snapshot in Prometheus text exposition format 0.0.4.
std::string renderPrometheus(const std::vector<MetricRegistry::Series>& series);

/// Convenience: snapshot + render.
std::string renderPrometheus(const MetricRegistry& registry);

/// Structural check of exposition text.  Returns true when the text is
/// well-formed; otherwise returns false and, when `error` is non-null,
/// stores a one-line description of the first problem found.
bool lintPrometheus(const std::string& text, std::string* error = nullptr);

/// Parse exposition text produced by renderPrometheus back into series.
/// Histogram families must carry the registry's full bucket ladder
/// (kBucketCount finite bounds + +Inf).  Throws pviz::Error on text the
/// renderer could not have produced; renderPrometheus(parsePrometheus(t))
/// reproduces `t` up to HELP/TYPE placement.
std::vector<MetricRegistry::Series> parsePrometheus(const std::string& text);

/// Merge several (instance name, exposition text) pairs into one
/// exposition: every series is relabeled with `{instanceLabel="name"}`,
/// the union is sorted so each family renders under a single TYPE
/// header, and the result passes lintPrometheus whenever the inputs do.
std::string mergeExpositions(
    const std::vector<std::pair<std::string, std::string>>& instances,
    const std::string& instanceLabel = "worker");

}  // namespace pviz::telemetry
