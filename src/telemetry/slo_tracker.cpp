#include "telemetry/slo_tracker.h"

#include <algorithm>

#include "telemetry/trace_sink.h"

namespace pviz::telemetry {

namespace {

std::uint64_t epochFor(std::uint64_t nowUs) {
  if (nowUs == 0) nowUs = traceNowUs();
  return nowUs / 1000000 / SloTracker::kBucketSeconds;
}

}  // namespace

void SloTracker::setObjective(const std::string& op, double p99Ms) {
  objectives_[op].p99Ms = p99Ms;
}

double SloTracker::objectiveMs(const std::string& op) const {
  const auto it = objectives_.find(op);
  return it != objectives_.end() ? it->second.p99Ms : 0.0;
}

std::vector<std::string> SloTracker::objectiveOps() const {
  std::vector<std::string> ops;
  ops.reserve(objectives_.size());
  for (const auto& [op, state] : objectives_) ops.push_back(op);
  return ops;
}

bool SloTracker::record(const std::string& op, double latencyMs, bool error,
                        std::uint64_t nowUs) {
  const auto it = objectives_.find(op);
  if (it == objectives_.end()) return false;
  OpState& state = it->second;
  const bool violated = error || latencyMs > state.p99Ms;

  const std::uint64_t epoch = epochFor(nowUs);
  Bucket& bucket = state.buckets[epoch % kBucketCount];
  std::uint64_t tagged = bucket.epoch.load(std::memory_order_acquire);
  if (tagged != epoch) {
    // First touch of a new epoch resets the recycled bucket.  Only the
    // CAS winner clears the counters; concurrent recorders that lose the
    // race proceed straight to the adds below.  A sliver of counts from
    // the dying epoch can survive the swap — at 10-second granularity on
    // hour-scale windows that bias is negligible and strictly bounded.
    if (bucket.epoch.compare_exchange_strong(tagged, epoch,
                                             std::memory_order_acq_rel)) {
      bucket.requests.store(0, std::memory_order_relaxed);
      bucket.violations.store(0, std::memory_order_relaxed);
    }
  }
  bucket.requests.fetch_add(1, std::memory_order_relaxed);
  if (violated) bucket.violations.fetch_add(1, std::memory_order_relaxed);
  return violated;
}

SloTracker::Burn SloTracker::sumWindow(const OpState& state,
                                       std::uint64_t nowEpoch,
                                       std::uint64_t windowSeconds) {
  const std::uint64_t windowBuckets =
      std::min<std::uint64_t>(windowSeconds / kBucketSeconds, kBucketCount);
  Burn burn;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const Bucket& bucket = state.buckets[i];
    const std::uint64_t epoch = bucket.epoch.load(std::memory_order_acquire);
    if (epoch > nowEpoch || nowEpoch - epoch >= windowBuckets) continue;
    burn.requests += bucket.requests.load(std::memory_order_relaxed);
    burn.violations += bucket.violations.load(std::memory_order_relaxed);
  }
  if (burn.requests > 0) {
    burn.burnRate = (static_cast<double>(burn.violations) /
                     static_cast<double>(burn.requests)) /
                    kBudgetFraction;
  }
  return burn;
}

SloTracker::Window SloTracker::burn(const std::string& op,
                                    std::uint64_t nowUs) const {
  Window window;
  const auto it = objectives_.find(op);
  if (it == objectives_.end()) return window;
  const std::uint64_t nowEpoch = epochFor(nowUs);
  window.shortWindow = sumWindow(it->second, nowEpoch, kShortWindowSeconds);
  window.longWindow = sumWindow(it->second, nowEpoch, kLongWindowSeconds);
  return window;
}

}  // namespace pviz::telemetry
