file(REMOVE_RECURSE
  "CMakeFiles/powerviz_power.dir/governor.cpp.o"
  "CMakeFiles/powerviz_power.dir/governor.cpp.o.d"
  "CMakeFiles/powerviz_power.dir/msr.cpp.o"
  "CMakeFiles/powerviz_power.dir/msr.cpp.o.d"
  "CMakeFiles/powerviz_power.dir/power_meter.cpp.o"
  "CMakeFiles/powerviz_power.dir/power_meter.cpp.o.d"
  "CMakeFiles/powerviz_power.dir/rapl.cpp.o"
  "CMakeFiles/powerviz_power.dir/rapl.cpp.o.d"
  "libpowerviz_power.a"
  "libpowerviz_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerviz_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
