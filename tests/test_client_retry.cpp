// ServiceClient retry-budget regression tests against a fake endpoint
// (a raw listener, no PowerViz server behind it).
//
// The bug pinned here: request()'s ConnectionLostError path used to call
// connectWithRetry(), which carried its own full `retries` budget with
// its own backoff schedule — a dead worker could soak up (retries+1)²
// connect attempts per request, with the backoff restarting per layer
// and `backoffMs *= 2` overflowing int at high retry counts.  The fix
// gives each operation ONE attempt budget (at most one connect per
// attempt) and caps the doubled backoff at maxRetryBackoffMs.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "service/client.h"

namespace pviz::service {
namespace {

/// Listener that accepts connections and immediately closes them —
/// every connect succeeds, every request dies with EOF before a
/// response.  Counts accepts, which is exactly the client's successful
/// connection-attempt count.
class SlammingEndpoint {
 public:
  SlammingEndpoint() {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listenFd_, 0);
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    EXPECT_EQ(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                            &len), 0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listenFd_, 64), 0);
    acceptThread_ = std::thread([this] {
      for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) return;  // listener closed: endpoint stopped
        ++accepts_;
        ::close(fd);
      }
    });
  }

  ~SlammingEndpoint() { stop(); }

  void stop() {
    if (listenFd_ >= 0) {
      ::shutdown(listenFd_, SHUT_RDWR);
      ::close(listenFd_);
      listenFd_ = -1;
    }
    if (acceptThread_.joinable()) acceptThread_.join();
  }

  int port() const { return port_; }

  /// Accepts seen so far, after waiting out any connect/accept race.
  /// Waits until at least `expectedAtLeast` arrive (or 5 s), then a
  /// beat longer so an over-count — the regression being tested —
  /// cannot hide in accept-loop lag.
  int accepts(int expectedAtLeast) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (accepts_.load() < expectedAtLeast &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return accepts_.load();
  }

 private:
  int listenFd_ = -1;
  int port_ = 0;
  std::atomic<int> accepts_{0};
  std::thread acceptThread_;
};

/// A loopback port with nothing listening on it (bound once to reserve
/// a fresh number, then released): every connect is refused.
int refusedPort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

ClientLimits fastLimits(int retries) {
  ClientLimits limits;
  limits.retries = retries;
  limits.retryBackoffMs = 1;
  limits.maxRetryBackoffMs = 4;
  return limits;
}

TEST(ClientRetry, RequestSharesOneAttemptBudget) {
  SlammingEndpoint endpoint;
  constexpr int kRetries = 3;
  ServiceClient client("127.0.0.1", endpoint.port(), fastLimits(kRetries));
  // Constructor connect: exactly one accept.
  EXPECT_EQ(endpoint.accepts(1), 1);

  Request ping;
  ping.op = Op::Ping;
  EXPECT_THROW(client.request(ping), ConnectionLostError);

  // One budget: the first attempt reuses the constructor's connection
  // and each of the `retries` re-attempts makes exactly one reconnect —
  // never a nested full retry loop of its own.
  EXPECT_EQ(endpoint.accepts(1 + kRetries), 1 + kRetries);

  // A second request gets a fresh budget of its own.
  EXPECT_THROW(client.request(ping), ConnectionLostError);
  EXPECT_EQ(endpoint.accepts(1 + 2 * kRetries + 1), 1 + 2 * kRetries + 1);
  endpoint.stop();
}

TEST(ClientRetry, ZeroRetriesFailsFast) {
  SlammingEndpoint endpoint;
  ServiceClient client("127.0.0.1", endpoint.port(), fastLimits(0));
  Request ping;
  ping.op = Op::Ping;
  EXPECT_THROW(client.request(ping), ConnectionLostError);
  EXPECT_EQ(endpoint.accepts(1), 1);  // the constructor's, nothing more
  endpoint.stop();
}

TEST(ClientRetry, RefusedConnectIsBounded) {
  EXPECT_THROW(
      ServiceClient("127.0.0.1", refusedPort(), fastLimits(2)),
      ConnectionLostError);
}

TEST(ClientRetry, BackoffIsCappedNotOverflowed) {
  // A pathological backoff start must be clamped to maxRetryBackoffMs
  // up front — uncapped doubling would sleep for weeks (and overflow
  // int); the test completing at all proves the cap is applied.
  ClientLimits limits;
  limits.retries = 3;
  limits.retryBackoffMs = 1'500'000'000;
  limits.maxRetryBackoffMs = 1;
  EXPECT_THROW(ServiceClient("127.0.0.1", refusedPort(), limits),
               ConnectionLostError);
}

}  // namespace
}  // namespace pviz::service
