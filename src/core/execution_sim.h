// Execution simulator: runs a characterized kernel on the modeled
// Broadwell package under a RAPL power cap.
//
// This is the measurement loop of the study.  A kernel's WorkProfile
// phases (gathered while the real kernel executed on the host) are
// replayed on the package model in governor-quantum steps: each quantum
// the DVFS governor adjusts frequency against the programmed cap, the
// cost model converts the phase's work into progress, energy deposits
// into the (wrapping) RAPL counter, APERF/MPERF advance, and the power
// meter samples on its 100 ms cadence — the same observables the paper
// collects on hardware.
#pragma once

#include <string>
#include <vector>

#include "arch/cost_model.h"
#include "power/governor.h"
#include "power/msr.h"
#include "power/power_meter.h"
#include "power/rapl.h"
#include "telemetry/power_sampler.h"

namespace pviz::util {
class CancelToken;
}  // namespace pviz::util

namespace pviz::core {

/// Per-phase slice of a measurement.
struct PhaseMeasurement {
  std::string name;
  double seconds = 0.0;
  double averageWatts = 0.0;
  double averageGhz = 0.0;
  double instructions = 0.0;
  double llcMisses = 0.0;
  double llcReferences = 0.0;
};

/// What the study records for one (kernel, cap) execution.
struct Measurement {
  double seconds = 0.0;
  double energyJoules = 0.0;
  double averageWatts = 0.0;     ///< energy / time
  double meteredWatts = 0.0;     ///< mean of the 100 ms meter samples
  double effectiveGhz = 0.0;     ///< APERF/MPERF × base clock
  double ipc = 0.0;              ///< INST_RET / CPU_CLK_UNHALT.REF_TSC
  double llcMissRate = 0.0;      ///< LONG_LAT_CACHE.MISS / .REF
  double elementsPerSecond = 0.0;  ///< Moreland–Oldfield rate
  std::vector<PhaseMeasurement> phases;
  std::vector<power::PowerMeter::Sample> powerTrace;
  /// Power/energy timeline on the meter cadence (telemetry::PowerSampler):
  /// per-sample watts, cumulative joules, and the active phase.  The last
  /// sample's joules equals energyJoules exactly.
  std::vector<telemetry::PowerSample> timeline;
};

struct SimulatorOptions {
  double governorQuantumSeconds = 0.005;  ///< firmware control cadence
  double meterIntervalSeconds = 0.1;      ///< study sampling cadence
  bool idealGovernor = false;  ///< solve the cap exactly each quantum
};

class ExecutionSimulator {
 public:
  explicit ExecutionSimulator(
      arch::MachineDescription machine =
          arch::MachineDescription::broadwellE52695v4(),
      SimulatorOptions options = {});

  /// Run `kernel` under `capWatts` (clamped to the machine's RAPL range).
  /// A non-null `cancel` token is polled at every phase boundary and
  /// periodically inside the governor-quantum loop; cancellation throws
  /// util::CancelledError and discards the partial measurement.
  Measurement run(const vis::KernelProfile& kernel, double capWatts,
                  util::CancelToken* cancel = nullptr);

  const arch::CostModel& costModel() const { return model_; }
  const arch::MachineDescription& machine() const { return model_.machine(); }

 private:
  arch::CostModel model_;
  SimulatorOptions options_;
};

/// A kernel profile repeated `cycles` times (the study runs several
/// visualization cycles per configuration).
vis::KernelProfile repeatKernel(const vis::KernelProfile& kernel, int cycles);

/// Every phase's work counts multiplied by `scale`.  The study uses this
/// to calibrate host-measured operation counts to VTK-m-scale cost (the
/// toolkit's per-element overheads are roughly two orders of magnitude
/// above a lean native kernel); intensive properties — IPC, draw,
/// ratios — are invariant, only absolute seconds change.
vis::KernelProfile scaleKernelWork(const vis::KernelProfile& kernel,
                                   double scale);

}  // namespace pviz::core
