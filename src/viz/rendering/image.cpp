#include "viz/rendering/image.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace pviz::vis {

Color Image::average() const {
  Color sum{0, 0, 0, 0};
  for (const auto& p : pixels_) sum = sum + p;
  const double n = static_cast<double>(pixels_.size());
  return {sum.r / n, sum.g / n, sum.b / n, sum.a / n};
}

std::int64_t Image::coveredPixels(double threshold) const {
  std::int64_t covered = 0;
  for (const auto& p : pixels_) {
    if (p.a > threshold) ++covered;
  }
  return covered;
}

void Image::writePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PVIZ_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  std::vector<unsigned char> row(static_cast<std::size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Color& c = at(x, y);
      const double rgb[3] = {c.r, c.g, c.b};
      for (int k = 0; k < 3; ++k) {
        const double clamped = std::clamp(rgb[k], 0.0, 1.0);
        const double encoded = std::pow(clamped, 1.0 / 2.2);
        row[static_cast<std::size_t>(x) * 3 + static_cast<std::size_t>(k)] =
            static_cast<unsigned char>(std::lround(encoded * 255.0));
      }
    }
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size()));
  }
}

}  // namespace pviz::vis
