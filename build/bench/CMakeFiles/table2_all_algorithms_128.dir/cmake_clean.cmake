file(REMOVE_RECURSE
  "CMakeFiles/table2_all_algorithms_128.dir/table2_all_algorithms_128.cpp.o"
  "CMakeFiles/table2_all_algorithms_128.dir/table2_all_algorithms_128.cpp.o.d"
  "table2_all_algorithms_128"
  "table2_all_algorithms_128.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_all_algorithms_128.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
