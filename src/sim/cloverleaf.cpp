#include "sim/cloverleaf.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace pviz::sim {

using vis::Id;
using vis::Id3;

CloverLeaf::CloverLeaf(Id cellsPerAxis, CloverConfig config)
    : cellsPerAxis_(cellsPerAxis),
      cellDims_{cellsPerAxis, cellsPerAxis, cellsPerAxis},
      pointDims_{cellsPerAxis + 1, cellsPerAxis + 1, cellsPerAxis + 1},
      h_(1.0 / static_cast<double>(cellsPerAxis)),
      config_(config) {
  PVIZ_REQUIRE(cellsPerAxis >= 4, "CloverLeaf needs at least 4^3 cells");
  const auto nc = static_cast<std::size_t>(cellDims_.product());
  const auto np = static_cast<std::size_t>(pointDims_.product());
  density_.assign(nc, config_.ambientDensity);
  energy_.assign(nc, config_.ambientEnergy);
  pressure_.assign(nc, 0.0);
  soundspeed_.assign(nc, 0.0);
  velX_.assign(np, 0.0);
  velY_.assign(np, 0.0);
  velZ_.assign(np, 0.0);
  scratchA_.assign(nc, 0.0);
  scratchB_.assign(nc, 0.0);
  profile_.kernel = "cloverleaf";
  profile_.elements = cellDims_.product();

  // Two-state initial condition: dense, hot corner region.
  const double extent = config_.blastExtent;
  util::parallelFor(0, cellDims_.product(), [&](Id c) {
    const Id i = c % cellDims_.i;
    const Id j = (c / cellDims_.i) % cellDims_.j;
    const Id k = c / (cellDims_.i * cellDims_.j);
    const double x = (static_cast<double>(i) + 0.5) * h_;
    const double y = (static_cast<double>(j) + 0.5) * h_;
    const double z = (static_cast<double>(k) + 0.5) * h_;
    if (x < extent && y < extent && z < extent) {
      density_[static_cast<std::size_t>(c)] = config_.blastDensity;
      energy_[static_cast<std::size_t>(c)] = config_.blastEnergy;
    }
  });
  equationOfState();
}

void CloverLeaf::equationOfState() {
  const double gm1 = config_.gamma - 1.0;
  util::parallelFor(0, cellDims_.product(), [&](Id c) {
    const auto i = static_cast<std::size_t>(c);
    pressure_[i] = gm1 * density_[i] * energy_[i];
    soundspeed_[i] = std::sqrt(config_.gamma * pressure_[i] /
                               std::max(density_[i], 1e-12));
  });
}

double CloverLeaf::computeDt() const {
  double maxSpeed = 1e-12;
  for (std::size_t c = 0; c < soundspeed_.size(); ++c) {
    maxSpeed = std::max(maxSpeed, soundspeed_[c]);
  }
  for (std::size_t n = 0; n < velX_.size(); ++n) {
    const double speed = std::sqrt(velX_[n] * velX_[n] + velY_[n] * velY_[n] +
                                   velZ_[n] * velZ_[n]);
    maxSpeed = std::max(maxSpeed, speed + 1e-12);
  }
  return config_.cfl * h_ / maxSpeed;
}

void CloverLeaf::accelerate(double dt) {
  // Node acceleration from the pressure gradient of adjacent cells.
  util::parallelFor(0, pointDims_.product(), [&](Id n) {
    const Id i = n % pointDims_.i;
    const Id j = (n / pointDims_.i) % pointDims_.j;
    const Id k = n / (pointDims_.i * pointDims_.j);
    // Interior nodes only; boundary nodes stay fixed (reflective walls).
    if (i == 0 || j == 0 || k == 0 || i == cellDims_.i || j == cellDims_.j ||
        k == cellDims_.k) {
      return;
    }
    // The eight cells sharing this node.
    double gradX = 0.0, gradY = 0.0, gradZ = 0.0, rhoAvg = 0.0;
    for (Id dk = -1; dk <= 0; ++dk) {
      for (Id dj = -1; dj <= 0; ++dj) {
        for (Id di = -1; di <= 0; ++di) {
          const auto c = static_cast<std::size_t>(
              cellId(i + di, j + dj, k + dk));
          const double p = pressure_[c];
          gradX += (di == 0 ? p : -p);
          gradY += (dj == 0 ? p : -p);
          gradZ += (dk == 0 ? p : -p);
          rhoAvg += density_[c];
        }
      }
    }
    rhoAvg *= 0.125;
    const double scale = dt / (4.0 * h_ * std::max(rhoAvg, 1e-12));
    const auto ni = static_cast<std::size_t>(n);
    velX_[ni] -= scale * gradX;
    velY_[ni] -= scale * gradY;
    velZ_[ni] -= scale * gradZ;
  });
}

void CloverLeaf::pdvAndViscosity(double dt) {
  // PdV work: e -= dt * p * div(u) / rho, with a linear artificial
  // viscosity damping compressive shocks.
  util::parallelFor(0, cellDims_.product(), [&](Id c) {
    const Id i = c % cellDims_.i;
    const Id j = (c / cellDims_.i) % cellDims_.j;
    const Id k = c / (cellDims_.i * cellDims_.j);
    // Face-average velocity differences over the cell's 8 nodes.
    double divX = 0.0, divY = 0.0, divZ = 0.0;
    for (Id dk = 0; dk <= 1; ++dk) {
      for (Id dj = 0; dj <= 1; ++dj) {
        for (Id di = 0; di <= 1; ++di) {
          const auto n = static_cast<std::size_t>(
              nodeId(i + di, j + dj, k + dk));
          divX += (di == 1 ? velX_[n] : -velX_[n]);
          divY += (dj == 1 ? velY_[n] : -velY_[n]);
          divZ += (dk == 1 ? velZ_[n] : -velZ_[n]);
        }
      }
    }
    const double divergence = (divX + divY + divZ) / (4.0 * h_);
    const auto ci = static_cast<std::size_t>(c);
    double p = pressure_[ci];
    if (divergence < 0.0) {  // compression: add viscous pressure
      p += config_.viscosity * density_[ci] * soundspeed_[ci] *
           (-divergence) * h_;
    }
    const double de = -dt * p * divergence / std::max(density_[ci], 1e-12);
    energy_[ci] = std::max(energy_[ci] + de, 1e-12);
  });
}

void CloverLeaf::advect(double dt) {
  // Donor-cell (first-order upwind) advection of density and energy
  // using face velocities averaged from node velocities.  Flux form, so
  // mass is conserved to round-off.
  const Id3 cd = cellDims_;
  auto faceVel = [&](Id i, Id j, Id k, int axis) {
    // Average the four node velocities on the lower face of cell (i,j,k)
    // along `axis`.
    double v = 0.0;
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        std::size_t n;
        if (axis == 0) {
          n = static_cast<std::size_t>(nodeId(i, j + a, k + b));
          v += velX_[n];
        } else if (axis == 1) {
          n = static_cast<std::size_t>(nodeId(i + a, j, k + b));
          v += velY_[n];
        } else {
          n = static_cast<std::size_t>(nodeId(i + a, j + b, k));
          v += velZ_[n];
        }
      }
    }
    return v * 0.25;
  };

  // Mass advection with energy carried per unit mass.
  std::vector<double>& newDensity = scratchA_;
  std::vector<double>& newEnergyMass = scratchB_;  // rho * e
  util::parallelFor(0, cd.product(), [&](Id c) {
    const Id i = c % cd.i;
    const Id j = (c / cd.i) % cd.j;
    const Id k = c / (cd.i * cd.j);
    const auto ci = static_cast<std::size_t>(c);

    double massFlux = 0.0;
    double energyFlux = 0.0;
    // For each axis, flux through the lower and upper faces.
    for (int axis = 0; axis < 3; ++axis) {
      const Id ii[3] = {i, j, k};
      for (int side = 0; side <= 1; ++side) {
        Id fi = i, fj = j, fk = k;
        if (axis == 0) fi += side;
        if (axis == 1) fj += side;
        if (axis == 2) fk += side;
        // Skip domain-boundary faces (reflective: no flux).
        const Id facePos = (axis == 0 ? fi : (axis == 1 ? fj : fk));
        const Id axMax = (axis == 0 ? cd.i : (axis == 1 ? cd.j : cd.k));
        if (facePos == 0 || facePos == axMax) continue;
        const double v = faceVel(fi, fj, fk, axis);
        // Donor cell: the upwind side supplies the advected state.
        Id ui = i, uj = j, uk = k;
        if (side == 0) {  // lower face: inflow when v > 0 (from below)
          if (v > 0.0) {
            if (axis == 0) ui = i - 1;
            if (axis == 1) uj = j - 1;
            if (axis == 2) uk = k - 1;
          }
        } else {  // upper face: outflow when v > 0
          if (v > 0.0) {
            // donor is this cell
          } else {
            if (axis == 0) ui = i + 1;
            if (axis == 1) uj = j + 1;
            if (axis == 2) uk = k + 1;
          }
        }
        const auto donor = static_cast<std::size_t>(cellId(ui, uj, uk));
        const double sign = (side == 0) ? 1.0 : -1.0;  // inflow positive
        const double flux = sign * v * dt / h_;
        massFlux += flux * density_[donor];
        energyFlux += flux * density_[donor] * energy_[donor];
        (void)ii;
      }
    }
    const double m0 = density_[ci];
    const double e0 = m0 * energy_[ci];
    newDensity[ci] = std::max(m0 + massFlux, 1e-12);
    newEnergyMass[ci] = std::max(e0 + energyFlux, 1e-15);
  });
  std::swap(density_, newDensity);
  util::parallelFor(0, cd.product(), [&](Id c) {
    const auto ci = static_cast<std::size_t>(c);
    energy_[ci] = newEnergyMass[ci] / density_[ci];
  });
}

double CloverLeaf::step() {
  const double dt = computeDt();
  accelerate(dt);
  pdvAndViscosity(dt);
  advect(dt);
  equationOfState();
  ++steps_;
  time_ += dt;

  // --- Workload characterization: classic stencil sweeps — high FP
  // density AND full-field streaming, like the compute-bound HPC codes
  // the paper contrasts visualization against.
  const double cells = static_cast<double>(cellDims_.product());
  const double nodes = static_cast<double>(pointDims_.product());
  vis::WorkProfile& hydro = profile_.addPhase("hydro-step");
  hydro.flops = cells * 190 + nodes * 70;
  hydro.intOps = cells * 120 + nodes * 40;
  hydro.memOps = cells * 70 + nodes * 30;
  hydro.bytesStreamed = cells * 8 * 14 + nodes * 8 * 6;
  hydro.bytesReused = cells * 8 * 30;
  hydro.workingSetBytes = cells * 8 * 6;
  hydro.parallelFraction = 0.99;
  hydro.overlap = 0.8;
  return dt;
}

double CloverLeaf::totalMass() const {
  double mass = 0.0;
  const double vol = h_ * h_ * h_;
  for (double rho : density_) mass += rho * vol;
  return mass;
}

double CloverLeaf::totalEnergy() const {
  const double vol = h_ * h_ * h_;
  double internal = 0.0;
  for (std::size_t c = 0; c < density_.size(); ++c) {
    internal += density_[c] * energy_[c] * vol;
  }
  // Kinetic energy from node velocities with node-lumped mass.
  double kinetic = 0.0;
  for (Id k = 0; k < pointDims_.k; ++k) {
    for (Id j = 0; j < pointDims_.j; ++j) {
      for (Id i = 0; i < pointDims_.i; ++i) {
        const auto n = static_cast<std::size_t>(nodeId(i, j, k));
        const double v2 = velX_[n] * velX_[n] + velY_[n] * velY_[n] +
                          velZ_[n] * velZ_[n];
        // Approximate nodal mass: average of adjacent cell densities.
        double rho = 0.0;
        int count = 0;
        for (Id dk = -1; dk <= 0; ++dk) {
          for (Id dj = -1; dj <= 0; ++dj) {
            for (Id di = -1; di <= 0; ++di) {
              const Id ci = i + di, cj = j + dj, ck = k + dk;
              if (ci < 0 || cj < 0 || ck < 0 || ci >= cellDims_.i ||
                  cj >= cellDims_.j || ck >= cellDims_.k) {
                continue;
              }
              rho += density_[static_cast<std::size_t>(cellId(ci, cj, ck))];
              ++count;
            }
          }
        }
        kinetic += 0.5 * (rho / std::max(count, 1)) * v2 * vol;
      }
    }
  }
  return internal + kinetic;
}

double CloverLeaf::minDensity() const {
  double lo = 1e300;
  for (double rho : density_) lo = std::min(lo, rho);
  return lo;
}

vis::UniformGrid CloverLeaf::exportForViz() const {
  vis::UniformGrid grid(pointDims_, {0, 0, 0}, {h_, h_, h_});

  // Cell-to-point averaged energy.
  vis::Field energy = vis::Field::zeros("energy", vis::Association::Points, 1,
                                        grid.numPoints());
  std::vector<double>& e = energy.data();
  util::parallelFor(0, grid.numPoints(), [&](Id n) {
    const Id i = n % pointDims_.i;
    const Id j = (n / pointDims_.i) % pointDims_.j;
    const Id k = n / (pointDims_.i * pointDims_.j);
    double sum = 0.0;
    int count = 0;
    for (Id dk = -1; dk <= 0; ++dk) {
      for (Id dj = -1; dj <= 0; ++dj) {
        for (Id di = -1; di <= 0; ++di) {
          const Id ci = i + di, cj = j + dj, ck = k + dk;
          if (ci < 0 || cj < 0 || ck < 0 || ci >= cellDims_.i ||
              cj >= cellDims_.j || ck >= cellDims_.k) {
            continue;
          }
          sum += energy_[static_cast<std::size_t>(cellId(ci, cj, ck))];
          ++count;
        }
      }
    }
    e[static_cast<std::size_t>(n)] = sum / std::max(count, 1);
  });
  grid.addField(std::move(energy));

  vis::Field velocity = vis::Field::zeros(
      "velocity", vis::Association::Points, 3, grid.numPoints());
  std::vector<double>& v = velocity.data();
  util::parallelFor(0, grid.numPoints(), [&](Id n) {
    const auto ni = static_cast<std::size_t>(n);
    v[ni * 3] = velX_[ni];
    v[ni * 3 + 1] = velY_[ni];
    v[ni * 3 + 2] = velZ_[ni];
  });
  grid.addField(std::move(velocity));
  return grid;
}

vis::KernelProfile CloverLeaf::takeProfile() {
  vis::KernelProfile out = std::move(profile_);
  profile_ = vis::KernelProfile{};
  profile_.kernel = "cloverleaf";
  profile_.elements = cellDims_.product();
  return out;
}

vis::UniformGrid makeCloverField(Id cellsPerAxis, double front) {
  PVIZ_REQUIRE(cellsPerAxis >= 2, "need at least 2 cells per axis");
  PVIZ_REQUIRE(front > 0.0 && front < 1.5, "front must be in (0, 1.5)");
  vis::UniformGrid grid = vis::UniformGrid::cube(cellsPerAxis);
  const Id numPoints = grid.numPoints();

  vis::Field energy =
      vis::Field::zeros("energy", vis::Association::Points, 1, numPoints);
  vis::Field velocity =
      vis::Field::zeros("velocity", vis::Association::Points, 3, numPoints);
  std::vector<double>& e = energy.data();
  std::vector<double>& v = velocity.data();

  const double frontRadius = front * std::sqrt(3.0);
  util::parallelFor(0, numPoints, [&](Id n) {
    const vis::Vec3 p = grid.pointPosition(n);
    const double r = length(p);  // distance from the blast corner (origin)
    // Smooth expanding front with trailing ripples (mimics the shocked
    // CloverLeaf energy field at a mature time step).
    const double w = 0.08;
    const double sigmoid = 1.0 / (1.0 + std::exp((r - frontRadius) / w));
    const double ripple =
        0.12 * std::sin(18.0 * r) * std::exp(-3.0 * r) * sigmoid;
    e[static_cast<std::size_t>(n)] = 1.0 + 1.5 * sigmoid + ripple;

    // Radial outflow peaking at the front, plus a gentle swirl so
    // streamlines curve.
    const double radial =
        0.8 * std::exp(-((r - frontRadius) * (r - frontRadius)) / (2 * w * w) * 0.5);
    const vis::Vec3 dir = r > 1e-9 ? p / r : vis::Vec3{0, 0, 0};
    const vis::Vec3 swirl{-p.y, p.x, 0.15};
    const vis::Vec3 vel = dir * radial + swirl * 0.25;
    v[static_cast<std::size_t>(n) * 3] = vel.x;
    v[static_cast<std::size_t>(n) * 3 + 1] = vel.y;
    v[static_cast<std::size_t>(n) * 3 + 2] = vel.z;
  });
  grid.addField(std::move(energy));
  grid.addField(std::move(velocity));
  return grid;
}

}  // namespace pviz::sim
