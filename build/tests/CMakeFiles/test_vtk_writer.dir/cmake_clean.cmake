file(REMOVE_RECURSE
  "CMakeFiles/test_vtk_writer.dir/test_vtk_writer.cpp.o"
  "CMakeFiles/test_vtk_writer.dir/test_vtk_writer.cpp.o.d"
  "test_vtk_writer"
  "test_vtk_writer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vtk_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
