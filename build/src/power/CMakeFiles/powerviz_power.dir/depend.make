# Empty dependencies file for powerviz_power.
# This may be replaced when dependencies are built.
