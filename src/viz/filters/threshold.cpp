#include "viz/filters/threshold.h"

#include "util/parallel.h"

namespace pviz::vis {

ThresholdFilter::Result ThresholdFilter::run(
    const UniformGrid& grid, const std::string& fieldName) const {
  const Field& field = grid.field(fieldName);
  PVIZ_REQUIRE(field.components() == 1, "threshold requires a scalar field");
  const Id numCells = grid.numCells();
  const bool pointAssoc = field.association() == Association::Points;
  const std::vector<double>& values = field.data();

  // Pass 1: flag + count kept cells per chunk; pass 2: compact.
  std::vector<std::int64_t> flags(static_cast<std::size_t>(numCells) + 1, 0);
  std::vector<double> cellValue(static_cast<std::size_t>(numCells));
  util::parallelFor(0, numCells, [&](Id cell) {
    double v;
    if (pointAssoc) {
      Id pts[8];
      grid.cellPointIds(grid.cellIjk(cell), pts);
      double sum = 0.0;
      for (int i = 0; i < 8; ++i) sum += values[static_cast<std::size_t>(pts[i])];
      v = sum / 8.0;
    } else {
      v = values[static_cast<std::size_t>(cell)];
    }
    cellValue[static_cast<std::size_t>(cell)] = v;
    flags[static_cast<std::size_t>(cell)] = (v >= lo_ && v <= hi_) ? 1 : 0;
  });

  const std::int64_t numKept = util::exclusiveScan(flags);
  flags[static_cast<std::size_t>(numCells)] = numKept;

  Result result;
  result.kept.cellIds.resize(static_cast<std::size_t>(numKept));
  result.kept.cellScalars.resize(static_cast<std::size_t>(numKept));
  util::parallelFor(0, numCells, [&](Id cell) {
    const std::int64_t at = flags[static_cast<std::size_t>(cell)];
    if (flags[static_cast<std::size_t>(cell) + 1] == at) return;
    result.kept.cellIds[static_cast<std::size_t>(at)] = cell;
    result.kept.cellScalars[static_cast<std::size_t>(at)] =
        cellValue[static_cast<std::size_t>(cell)];
  });

  // --- Workload characterization: loads/stores dominate (the paper notes
  // threshold's low IPC comes from being dominated by data movement).
  result.profile.kernel = "threshold";
  result.profile.elements = numCells;
  const double cells = static_cast<double>(numCells);
  const double kept = static_cast<double>(numKept);

  WorkProfile& select = result.profile.addPhase("select");
  select.flops = cells * (pointAssoc ? 10.0 : 2.0);  // average + compares
  select.intOps = cells * 14;
  select.memOps = cells * (pointAssoc ? 12.0 : 4.0);
  select.bytesStreamed = field.sizeBytes() + cells * (8 + 8);  // field + flag/value
  select.bytesReused = pointAssoc ? cells * 36 : 0.0;
  select.irregularAccesses = pointAssoc ? cells * 3.4 : 0.6 * cells;
  // Sliding plane-window gathers: LLC-resident at any size.
  select.workingSetBytes = static_cast<double>(grid.pointDims().i) *
                           static_cast<double>(grid.pointDims().j) * 8 * 4;
  select.parallelFraction = 0.995;
  select.overlap = 0.92;

  WorkProfile& scan = result.profile.addPhase("scan");
  scan.intOps = cells * 4;
  scan.memOps = cells * 3;
  scan.bytesStreamed = cells * 8 * 2;
  scan.parallelFraction = 0.9;
  scan.overlap = 0.9;

  WorkProfile& compact = result.profile.addPhase("compact");
  compact.intOps = cells * 6 + kept * 6;
  compact.memOps = cells * 2 + kept * 4;
  compact.bytesStreamed = cells * 8 + kept * 16;
  compact.parallelFraction = 0.99;
  compact.overlap = 0.92;

  return result;
}

}  // namespace pviz::vis
