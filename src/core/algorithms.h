// The study's eight visualization algorithms behind one interface.
//
// Each algorithm runs for real on a dataset (producing geometry or
// images) and returns the KernelProfile characterizing that execution.
// Parameters default to the paper's configuration (10 isovalues, three
// axis slices, 1000 seeds x 1000 RK4 steps, an image database per
// rendering cycle); tests and benches shrink the rendering load via
// AlgorithmParams where host time matters — the profile always reflects
// what actually ran.
//
// A per-worklet-launch framework overhead phase (allocation, dispatch,
// serial glue — the cost VTK-m pays around every worklet) is appended to
// every profile; it is what dominates small datasets and produces the
// paper's low IPC readings at 32^3.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "viz/dataset/uniform_grid.h"
#include "viz/worklet/work_profile.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::core {

/// The study's algorithm set, in the paper's Fig. 1 order.
enum class Algorithm {
  Contour,
  Threshold,
  SphericalClip,
  Isovolume,
  Slice,
  ParticleAdvection,
  RayTracing,
  VolumeRendering,
};

/// All eight, iteration-ordered.
const std::vector<Algorithm>& allAlgorithms();

/// Paper-facing display name ("Contour", "Spherical Clip", ...).
std::string algorithmName(Algorithm algorithm);

/// CLI/protocol token ("contour", "clip", "raytracing", ...): the inverse
/// of parseAlgorithmToken, stable across releases.
std::string algorithmToken(Algorithm algorithm);

/// Parse a CLI/protocol algorithm token; throws pviz::Error naming the
/// token when it matches no algorithm.
Algorithm parseAlgorithmToken(const std::string& token);

/// Parse a comma-separated algorithm list; "all" (or an empty string)
/// selects all eight.  Throws pviz::Error on an unknown name.
std::vector<Algorithm> parseAlgorithmList(const std::string& csv);

/// Process-default multi-block decomposition, read once from
/// POWERVIZ_BLOCKS / POWERVIZ_GHOST (1 block, 1 ghost layer when
/// unset).  Mirrors the POWERVIZ_BACKEND precedence: an explicit
/// request/CLI value always overrides the environment.
vis::Id defaultBlockCount();
vis::Id defaultGhostLayers();

struct AlgorithmParams {
  // Contour.
  int isovalueCount = 10;
  // Threshold: central band of the field range [loQ, hiQ].
  double thresholdLoFraction = 0.55;
  double thresholdHiFraction = 0.95;
  // Spherical clip.
  double clipRadiusFraction = 0.3;  ///< of the domain diagonal
  // Isovolume band of the field range.
  double isovolumeLoFraction = 0.4;
  double isovolumeHiFraction = 0.8;
  // Particle advection (paper: constant regardless of dataset size).
  vis::Id seedCount = 1000;
  vis::Id maxSteps = 1000;
  double stepLength = 0.001;
  /// "streamline" (steady flow) or "pathline" (unsteady: interpolates
  /// between the "velocity_prev" and "velocity" fields when the grid
  /// carries both; degenerates to a steady window otherwise).
  std::string advectionMode = "streamline";
  /// "worksteal" (batched work-stealing rounds) or "static" (one
  /// contiguous chunk per worker).  Outputs are bit-identical; the
  /// schedule only changes wall-clock under load imbalance.
  std::string advectionSchedule = "worksteal";
  // Rendering (paper: an image database of 50 images per cycle).
  int cameraCount = 50;
  int imageWidth = 512;
  int imageHeight = 512;
  /// Cameras actually traced on the host; the per-camera phases of the
  /// profile are scaled by cameraCount / sampledCameraCount (per-camera
  /// work is identical, so the extrapolation is exact up to view
  /// variation).  0 = trace all cameraCount cameras.
  int sampledCameraCount = 8;
  /// Multi-block decomposition: >1 partitions the dataset into k-slabs
  /// with ghost-zone exchange and runs the cell-local filters per block
  /// (globally-traversing algorithms run on the stitched grid).  Every
  /// output is bit-identical to the single-block run; the profile gains
  /// ghost-exchange / block-stitch phases.
  vis::Id blockCount = defaultBlockCount();
  /// Ghost cell planes per block side (>= 1; a block's top point plane
  /// travels through the exchange).
  vis::Id ghostLayers = defaultGhostLayers();

  int effectiveSampledCameras() const {
    if (sampledCameraCount <= 0 || sampledCameraCount > cameraCount) {
      return cameraCount;
    }
    return sampledCameraCount;
  }

  /// Reduced rendering load for tests: few cameras, small images.
  static AlgorithmParams lightRendering() {
    AlgorithmParams p;
    p.cameraCount = 4;
    p.sampledCameraCount = 4;
    p.imageWidth = 128;
    p.imageHeight = 128;
    return p;
  }
};

/// Run `algorithm` on `grid` (expects point fields "energy" and
/// "velocity") and return the profile of the work that executed.  The
/// context supplies the thread pool, scratch arena, cancellation token
/// (polled at phase and chunk boundaries), and phase tracer.
vis::KernelProfile runAlgorithm(util::ExecutionContext& ctx,
                                Algorithm algorithm,
                                const vis::UniformGrid& grid,
                                const AlgorithmParams& params = {});

/// Compatibility shim: run on a fresh context over the global pool.
vis::KernelProfile runAlgorithm(Algorithm algorithm,
                                const vis::UniformGrid& grid,
                                const AlgorithmParams& params = {});

/// The framework-overhead phase for `launches` worklet dispatches;
/// exposed for tests.
vis::WorkProfile frameworkOverheadPhase(int launches);

}  // namespace pviz::core
