// Quickstart: characterize one visualization algorithm and sweep the
// processor power cap — the core loop of the whole study, in ~40 lines.
//
//   $ ./quickstart
//
// 1. Build a CloverLeaf-like dataset.
// 2. Run the contour filter for real (geometry comes back too).
// 3. Replay its measured workload on the modeled Broadwell package
//    under each RAPL cap and print the paper's headline metrics.
#include <iostream>

#include "core/execution_sim.h"
#include "sim/cloverleaf.h"
#include "util/exec_context.h"
#include "util/table.h"
#include "viz/filters/contour.h"

int main() {
  using namespace pviz;

  // A 64^3 dataset shaped like an evolved CloverLeaf energy field.
  const vis::UniformGrid dataset = sim::makeCloverField(64);

  // Extract 10 isosurfaces (the study's configuration).
  vis::ContourFilter contour;
  contour.setIsovalues(
      vis::ContourFilter::uniformIsovalues(dataset.field("energy"), 10));
  util::ExecutionContext ctx;
  const vis::ContourFilter::Result result = contour.run(ctx, dataset, "energy");
  std::cout << "contour produced " << result.surface.numTriangles()
            << " triangles over 10 isovalues\n\n";

  // Replay the measured workload on the modeled power-capped package.
  core::ExecutionSimulator package;
  const vis::KernelProfile workload =
      core::scaleKernelWork(result.profile, 100.0);  // VTK-m-scale cost

  util::TextTable table;
  table.setHeader({"Cap(W)", "Time(s)", "EffGHz", "Power(W)", "IPC",
                   "LLC miss"});
  for (double cap : {120.0, 100.0, 80.0, 60.0, 40.0}) {
    const core::Measurement m = package.run(workload, cap);
    table.addRow({util::formatFixed(cap, 0),
                  util::formatFixed(m.seconds, 3),
                  util::formatFixed(m.effectiveGhz, 2),
                  util::formatFixed(m.averageWatts, 1),
                  util::formatFixed(m.ipc, 2),
                  util::formatFixed(m.llcMissRate, 3)});
  }
  table.print(std::cout);
  std::cout << "\ncontour is data intensive: cutting the cap 3X barely "
               "moves its runtime —\nthe power-opportunity class of "
               "Labasan et al., IPDPS'19\n";
  return 0;
}
