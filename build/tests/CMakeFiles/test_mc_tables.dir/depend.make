# Empty dependencies file for test_mc_tables.
# This may be replaced when dependencies are built.
