#include "viz/rendering/bvh.h"

#include <algorithm>

#include "util/error.h"

namespace pviz::vis {

namespace {

Bounds triangleBounds(const TriangleMesh& mesh, Id tri) {
  Bounds b;
  for (int k = 0; k < 3; ++k) {
    b.expand(mesh.points[static_cast<std::size_t>(
        mesh.connectivity[static_cast<std::size_t>(3 * tri + k)])]);
  }
  return b;
}

}  // namespace

Bvh::Bvh(const TriangleMesh& mesh, int maxLeafSize) : mesh_(mesh) {
  PVIZ_REQUIRE(maxLeafSize >= 1, "BVH leaf size must be >= 1");
  const Id n = mesh.numTriangles();
  order_.resize(static_cast<std::size_t>(n));
  std::vector<Vec3> centroids(static_cast<std::size_t>(n));
  for (Id t = 0; t < n; ++t) {
    order_[static_cast<std::size_t>(t)] = t;
    const Bounds b = triangleBounds(mesh, t);
    centroids[static_cast<std::size_t>(t)] = b.center();
  }
  if (n > 0) {
    nodes_.reserve(static_cast<std::size_t>(2 * n));
    build(0, n, centroids, maxLeafSize);
  }
}

std::int32_t Bvh::build(std::int64_t begin, std::int64_t end,
                        std::vector<Vec3>& centroids, int maxLeafSize) {
  const auto nodeIndex = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();

  Bounds box;
  Bounds centroidBox;
  for (std::int64_t i = begin; i < end; ++i) {
    box.expand(triangleBounds(mesh_, order_[static_cast<std::size_t>(i)]));
    centroidBox.expand(
        centroids[static_cast<std::size_t>(order_[static_cast<std::size_t>(i)])]);
  }
  nodes_[static_cast<std::size_t>(nodeIndex)].box = box;

  const std::int64_t count = end - begin;
  const Vec3 extent = centroidBox.extent();
  const bool degenerate =
      extent.x <= 0.0 && extent.y <= 0.0 && extent.z <= 0.0;
  if (count <= maxLeafSize || degenerate) {
    nodes_[static_cast<std::size_t>(nodeIndex)].first =
        static_cast<std::int32_t>(begin);
    nodes_[static_cast<std::size_t>(nodeIndex)].count =
        static_cast<std::int32_t>(count);
    return nodeIndex;
  }

  int axis = 0;
  if (extent.y > extent[axis]) axis = 1;
  if (extent.z > extent[axis]) axis = 2;

  const std::int64_t mid = begin + count / 2;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](Id a, Id b) {
                     return centroids[static_cast<std::size_t>(a)][axis] <
                            centroids[static_cast<std::size_t>(b)][axis];
                   });

  const std::int32_t left = build(begin, mid, centroids, maxLeafSize);
  const std::int32_t right = build(mid, end, centroids, maxLeafSize);
  nodes_[static_cast<std::size_t>(nodeIndex)].left = left;
  nodes_[static_cast<std::size_t>(nodeIndex)].right = right;
  return nodeIndex;
}

bool Bvh::intersectTriangle(const Ray& ray, Id tri, TriangleHit& best) const {
  // Möller–Trumbore.
  const Vec3& a = mesh_.points[static_cast<std::size_t>(
      mesh_.connectivity[static_cast<std::size_t>(3 * tri)])];
  const Vec3& b = mesh_.points[static_cast<std::size_t>(
      mesh_.connectivity[static_cast<std::size_t>(3 * tri + 1)])];
  const Vec3& c = mesh_.points[static_cast<std::size_t>(
      mesh_.connectivity[static_cast<std::size_t>(3 * tri + 2)])];
  const Vec3 e1 = b - a;
  const Vec3 e2 = c - a;
  const Vec3 p = cross(ray.direction, e2);
  const double det = dot(e1, p);
  if (std::abs(det) < 1e-14) return false;
  const double invDet = 1.0 / det;
  const Vec3 s = ray.origin - a;
  const double u = dot(s, p) * invDet;
  if (u < 0.0 || u > 1.0) return false;
  const Vec3 q = cross(s, e1);
  const double v = dot(ray.direction, q) * invDet;
  if (v < 0.0 || u + v > 1.0) return false;
  const double t = dot(e2, q) * invDet;
  if (t <= 1e-9 || t >= best.t) return false;
  best.t = t;
  best.triangle = tri;
  best.u = u;
  best.v = v;
  return true;
}

TriangleHit Bvh::intersect(const Ray& ray, TraversalStats* stats) const {
  TriangleHit best;
  if (nodes_.empty()) return best;

  std::int32_t stack[64];
  int top = 0;
  stack[top++] = 0;
  std::int64_t nodesVisited = 0;
  std::int64_t triTests = 0;

  while (top > 0) {
    const Node& node = nodes_[static_cast<std::size_t>(stack[--top])];
    ++nodesVisited;
    double tNear, tFar;
    if (!intersectBox(ray, node.box, tNear, tFar) || tNear >= best.t) {
      continue;
    }
    if (node.count > 0) {
      for (std::int32_t i = 0; i < node.count; ++i) {
        ++triTests;
        intersectTriangle(
            ray, order_[static_cast<std::size_t>(node.first + i)], best);
      }
    } else {
      PVIZ_ASSERT(top + 2 <= 64);
      stack[top++] = node.left;
      stack[top++] = node.right;
    }
  }
  if (stats != nullptr) {
    stats->nodesVisited += nodesVisited;
    stats->trianglesTested += triTests;
  }
  return best;
}

TriangleHit Bvh::intersectBruteForce(const Ray& ray) const {
  TriangleHit best;
  for (Id t = 0; t < mesh_.numTriangles(); ++t) {
    intersectTriangle(ray, t, best);
  }
  return best;
}

}  // namespace pviz::vis
