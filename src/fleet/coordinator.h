// The fleet coordinator: sharded studies over a pool of powerviz_serve
// workers.
//
// runSweep() decomposes the (sizes × algorithms × caps) matrix into
// SweepUnits (core/sweep.h), routes each unit by its (algorithm, size)
// pairKey over a consistent-hash ring (fleet/hash_ring.h) so a pair's
// caps stay on one worker and its characterization cache stays hot,
// then drives one dispatcher thread per worker:
//
//   claim → dispatch → merge
//
// Claim is an advisory admission handshake (the worker grants while its
// request queue has room); a declined claim reroutes the unit to the
// next worker on the ring instead of queueing blind.  Dispatch is the
// ordinary `study` op over the ndjson protocol through ServiceClient,
// whose own retry layer absorbs a worker *restart*; a worker that stays
// dead surfaces as ConnectionLostError, and the coordinator then marks
// it dead, removes it from the ring, and reroutes everything it still
// owed.  Liveness is double-checked by a heartbeat thread feeding the
// WorkerRegistry (K consecutive misses = dead), which catches workers
// that hang without dropping connections.  Optionally, units in flight
// longer than `hedgeAfterMs` are hedged: a duplicate dispatch to a
// different worker, first completion wins.
//
// Merging is by slot, not by arrival: every unit carries the index
// range its records occupy in the single-process record order, fixed at
// decomposition time, and only the first reply for a unit fills its
// slots (later replies are counted as duplicates and dropped).  The
// merged report is therefore *bit-identical* to what one
// `powerviz_serve` would return for the whole sweep — same JSON, same
// order — which is what test_fleet asserts.  That identity leans on the
// kernel-determinism guarantee (PR 3): a characterization is the same
// numbers no matter which process runs it.
//
// mergedMetrics() scrapes every usable worker's `metrics` op and merges
// the expositions through telemetry::mergeExpositions, labeling each
// series with its worker name — one fleet-wide scrape that still passes
// lintPrometheus.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/sweep.h"
#include "fleet/hash_ring.h"
#include "fleet/trace_collector.h"
#include "fleet/worker_registry.h"
#include "service/client.h"
#include "service/protocol.h"
#include "telemetry/event_ring.h"
#include "telemetry/trace_sink.h"

namespace pviz::fleet {

struct FleetEndpoint {
  std::string name;  ///< fleet identity ("w0", "w1", ...)
  std::string host = "127.0.0.1";
  int port = 0;
  long pid = -1;  ///< when spawned by this process; -1 for attached
};

struct CoordinatorConfig {
  std::vector<FleetEndpoint> endpoints;
  core::SweepGrain grain = core::SweepGrain::PerCap;

  int heartbeatIntervalMs = 250;
  int heartbeatTimeoutMs = 2000;  ///< recv deadline per beat
  int missesBeforeDead = 3;       ///< consecutive misses → dead

  /// Hedge a unit in flight longer than this to a second worker
  /// (0 disables hedging).
  int hedgeAfterMs = 0;
  /// Dispatch attempts per unit before the sweep fails.
  int maxUnitAttempts = 5;

  /// ServiceClient limits for dispatch connections.  Retries absorb a
  /// worker restart; the recv deadline (0 = none) turns a hung worker
  /// into a retryable error instead of a stuck dispatcher.
  int clientRetries = 2;
  int clientBackoffMs = 50;
  int recvTimeoutMs = 0;

  int virtualNodes = 128;  ///< ring points per worker
};

/// Counters from the most recent runSweep().
struct FleetSweepStats {
  std::size_t units = 0;
  std::size_t records = 0;
  std::size_t dispatches = 0;      ///< study requests sent
  std::size_t cachedReplies = 0;   ///< answered from a worker result cache
  std::size_t duplicates = 0;      ///< replies that lost the slot race
  std::size_t hedges = 0;
  std::size_t reroutes = 0;        ///< units moved between workers
  std::size_t claimsDeclined = 0;
  std::size_t workersDead = 0;     ///< deaths observed during the sweep
  std::map<std::string, std::size_t> unitsByWorker;  ///< credited winner
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorConfig config);
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Register the fleet identity with every endpoint and start the
  /// heartbeat prober.  Endpoints that cannot be reached are marked
  /// dead; throws pviz::Error when none are usable.
  void start();
  void stop();

  /// Run the full sweep across the fleet; blocks until every slot is
  /// filled.  Returns {"count": N, "records": [...]} bit-identical to
  /// the single-process `study` op for the same scope.  Throws
  /// pviz::Error when a unit exhausts maxUnitAttempts or the whole
  /// fleet dies.  `cycles` must be positive (every worker must run the
  /// same cycle count for the reports to be comparable).
  service::Json runSweep(const std::vector<core::Algorithm>& algorithms,
                         const std::vector<vis::Id>& sizes,
                         const std::vector<double>& capsWatts, int cycles);
  /// Same with a multi-block dimension, outermost: one full study per
  /// entry of `blockCounts` (request `blocks` field; 0 = the worker's
  /// configured default), concatenated in order.
  service::Json runSweep(const std::vector<core::Algorithm>& algorithms,
                         const std::vector<vis::Id>& sizes,
                         const std::vector<double>& capsWatts,
                         const std::vector<vis::Id>& blockCounts, int cycles);

  /// Counters from the most recent runSweep().
  FleetSweepStats lastSweepStats() const;

  /// Fleet-wide Prometheus exposition: every usable worker's `metrics`
  /// scrape merged, each series labeled {worker="..."}.  Dead workers
  /// are skipped; throws when no worker answers.
  std::string mergedMetrics();

  /// Per-worker `stats` op replies (skips workers that do not answer).
  std::vector<std::pair<std::string, service::Json>> workerStats();

  /// Fleet summary: registry snapshot + last sweep counters.
  service::Json statsJson() const;

  /// The fleet-wide distributed trace: every usable worker's
  /// `trace_dump` fragment merged with the coordinator's dispatch spans
  /// onto the coordinator clock (heartbeat offset estimate + causal
  /// clamp, see fleet/trace_collector.h).  `clearWorkers` drains each
  /// worker's retained buffer so the next sweep starts a fresh trace.
  /// Workers that do not answer are simply absent from the merge.
  MergedTrace collectTrace(bool clearWorkers = true);

  /// Coordinator-side structured events (worker state transitions,
  /// sweep lifecycle), mirroring the workers' `events` op.
  telemetry::EventRing& events() { return events_; }

  WorkerRegistry& registry() { return registry_; }

 private:
  struct UnitState {
    core::SweepUnit unit;
    std::string cacheKey;   ///< claim token = the unit's result-cache key
    std::string pairKey;    ///< routing key
    std::uint64_t traceId = 0;  ///< coordinator-minted trace context
    int attempts = 0;
    bool hedged = false;
    bool inFlight = false;
    bool done = false;
    std::string owner;  ///< dispatcher currently (or last) carrying it
    std::chrono::steady_clock::time_point startedAt{};
  };

  void heartbeatLoop();
  void dispatchLoop(const std::string& worker);

  /// All *Locked methods require mutex_ held.
  void markWorkerDeadLocked(const std::string& worker);
  void rerouteLocked(std::size_t index, const std::string& notTo);
  void enqueueLocked(const std::string& worker, std::size_t index);
  void applyReplyLocked(std::size_t index, const std::string& worker,
                        const service::Response& response);
  void failSweepLocked(const std::string& why);
  bool workerUsable(const std::string& worker) const;

  service::Request studyRequest(const UnitState& unit, int cycles) const;

  /// One completed dispatch attempt → one "fleet" span in traceSink_
  /// (no lock needed; the sink has its own).
  void recordDispatchSpan(const UnitState& snapshot, const std::string& worker,
                          std::uint64_t startUs, const std::string& status);

  CoordinatorConfig config_;
  WorkerRegistry registry_;
  std::map<std::string, FleetEndpoint> endpoints_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  HashRing ring_;
  bool running_ = false;

  // Sweep state (valid while sweepActive_).
  bool sweepActive_ = false;
  int sweepCycles_ = 0;
  std::string failure_;
  std::vector<UnitState> units_;
  std::vector<service::Json> slots_;
  std::vector<char> filled_;
  std::size_t filledCount_ = 0;
  std::map<std::string, std::deque<std::size_t>> queues_;
  FleetSweepStats stats_;

  /// Trace-id mint for sweep units.  Never reset: ids stay unique for
  /// the coordinator's lifetime, so back-to-back sweeps cannot collide
  /// in a worker's retained trace buffer.
  std::atomic<std::uint64_t> nextTraceId_{1};
  /// Coordinator half of the fleet trace: one span per dispatch attempt.
  telemetry::TraceSink traceSink_;
  /// Structured coordinator events (worker transitions via the registry
  /// hook, sweep lifecycle markers).
  telemetry::EventRing events_;

  std::thread heartbeatThread_;
};

}  // namespace pviz::fleet
