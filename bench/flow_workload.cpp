// Flow workload characterization: particle advection swept over seed
// counts spanning three orders of magnitude (10^3 .. 10^6), under every
// power cap.
//
// Two questions, two tables:
//
//   1. IPC vs particle count — the paper's Fig. 6 finding is that
//      advection IPC is insensitive to *dataset* size; this sweep asks
//      the same question about *particle* count.  The working set is
//      particles × a few cache lines, so IPC should hold until the
//      particle pool itself outgrows the shared cache.
//
//   2. Power knee vs cap — per particle count, the cap at which the
//      modeled runtime first degrades by 10% (the paper's red-highlight
//      rule).  Advection is arithmetic-dense, so the knee sits high:
//      there is little memory slack to hide a frequency drop in.
//
// Knobs: PVIZ_SIZE (grid size, default 64), PVIZ_ADVECT_STEPS (max
// integration steps, default 100), PVIZ_CYCLES, PVIZ_CACHE/PVIZ_NOCACHE
// as usual.  Each seed count runs its own Study (the characterization
// memo is keyed on the configured params), but all share the on-disk
// profile cache, whose key covers seed count and step count.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "util/table.h"

using namespace pviz;

namespace {

const std::vector<vis::Id> kParticleCounts = {1000, 10000, 100000, 1000000};

std::string countLabel(vis::Id count) {
  if (count % 1000000 == 0) return std::to_string(count / 1000000) + "M";
  if (count % 1000 == 0) return std::to_string(count / 1000) + "k";
  return std::to_string(count);
}

}  // namespace

int main() {
  benchutil::printBanner(
      "Flow workload — advection vs particle count and power cap",
      "Labasan et al., IPDPS'19, §V-C (advection workload)");

  const vis::Id size = benchutil::envInt("PVIZ_SIZE", 64);
  const vis::Id maxSteps = benchutil::envInt("PVIZ_ADVECT_STEPS", 100);

  // One study per particle count: the in-memory characterization memo is
  // keyed on (algorithm, size) under the configured params, so the seed
  // count has to live in the config.  The studies still share the disk
  // cache (its key covers seedCount/maxSteps) and each generates only
  // its own size^3 dataset.
  std::vector<std::unique_ptr<core::Study>> studies;
  core::StudyConfig base = benchutil::defaultStudyConfig();
  base.params.maxSteps = maxSteps;
  for (vis::Id count : kParticleCounts) {
    core::StudyConfig config = base;
    config.params.seedCount = count;
    studies.push_back(std::make_unique<core::Study>(config));
  }
  const std::vector<double>& caps = base.capsWatts;

  std::vector<std::vector<core::ConfigRecord>> sweeps;
  for (auto& study : studies) {
    sweeps.push_back(
        study->capSweep(core::Algorithm::ParticleAdvection, size));
  }

  std::cout << "\nIPC by particle count (" << size << "^3 grid, "
            << maxSteps << " max steps)\n";
  util::TextTable ipc;
  {
    std::vector<std::string> header = {"Cap(W)"};
    for (vis::Id count : kParticleCounts) header.push_back(countLabel(count));
    ipc.setHeader(std::move(header));
  }
  for (std::size_t c = 0; c < caps.size(); ++c) {
    std::vector<std::string> row = {util::formatFixed(caps[c], 0)};
    for (const auto& sweep : sweeps) {
      row.push_back(util::formatFixed(sweep[c].measurement.ipc, 2));
    }
    ipc.addRow(std::move(row));
  }
  ipc.print(std::cout);

  std::cout << "\nPower knee by particle count (first cap with Tratio >= "
               "1.1; '-' = none)\n";
  util::TextTable knee;
  knee.setHeader({"Particles", "Knee cap(W)", "T@default(s)", "T@40W(s)",
                  "Tratio@40W", "Pratio@40W"});
  for (std::size_t s = 0; s < sweeps.size(); ++s) {
    const auto& sweep = sweeps[s];
    std::vector<double> tRatios;
    for (const auto& record : sweep) tRatios.push_back(record.ratios.tRatio);
    const int kneeIdx = core::firstSlowdownIndex(tRatios);
    const auto& last = sweep.back();
    knee.addRow({countLabel(kParticleCounts[s]),
                 kneeIdx >= 0 ? util::formatFixed(caps[kneeIdx], 0) : "-",
                 util::formatFixed(sweep.front().measurement.seconds, 3),
                 util::formatFixed(last.measurement.seconds, 3),
                 util::formatFixed(last.ratios.tRatio, 2),
                 util::formatFixed(last.ratios.pRatio, 2)});
  }
  knee.print(std::cout);
  return 0;
}
