#include "util/fileio.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace pviz::util {

void atomicWriteFile(const std::string& path, const std::string& content) {
  PVIZ_REQUIRE(!path.empty(), "atomicWriteFile: empty path");
  // Same-directory temporary so the rename cannot cross filesystems; the
  // pid + serial suffix keeps concurrent writers from colliding.
  static std::atomic<unsigned> tmpSerial{0};
  std::ostringstream tmpName;
  tmpName << path << ".tmp." << ::getpid() << '.'
          << tmpSerial.fetch_add(1, std::memory_order_relaxed);
  const std::string tmpPath = tmpName.str();
  {
    std::ofstream out(tmpPath, std::ios::trunc | std::ios::binary);
    PVIZ_REQUIRE(out.good(), "cannot open '" + tmpPath + "' for writing");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmpPath.c_str());
      PVIZ_REQUIRE(false, "short write to '" + tmpPath + "'");
    }
  }
  if (std::rename(tmpPath.c_str(), path.c_str()) != 0) {
    std::remove(tmpPath.c_str());
    PVIZ_REQUIRE(false, "cannot move '" + tmpPath + "' into place at '" +
                            path + "'");
  }
}

}  // namespace pviz::util
