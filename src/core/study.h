// The study driver: the paper's three experimental phases over the
// (power cap × algorithm × dataset size) matrix — 288 configurations at
// full scope.
//
// For each (algorithm, size) the real kernel executes once on the host
// to characterize its work (the expensive part); the nine power caps
// are then evaluated on the package model.  Characterizations are
// memoized in-process and optionally on disk so the per-table bench
// binaries share them.
#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/execution_sim.h"
#include "core/metrics.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::core {

struct StudyConfig {
  /// Processor power caps, default cap first (paper: 120 W → 40 W).
  std::vector<double> capsWatts = {120, 110, 100, 90, 80, 70, 60, 50, 40};
  /// Dataset sizes (cells per axis; paper: 32, 64, 128, 256).
  std::vector<vis::Id> sizes = {32, 64, 128, 256};
  AlgorithmParams params;
  /// Visualization cycles per configuration (the paper couples the
  /// filter to a running simulation and reports time over all cycles).
  int cycles = 10;
  /// Host-to-VTK-m work calibration (see scaleKernelWork): multiplies
  /// every characterized operation count so modeled runtimes land on
  /// the paper's scale (seconds, not milliseconds).  Leaves IPC, power
  /// draw and all ratios untouched.
  double workScale = 100.0;
  SimulatorOptions simulator;
  arch::MachineDescription machine =
      arch::MachineDescription::broadwellE52695v4();
  /// Optional on-disk characterization cache (empty = in-memory only).
  std::string cachePath;
};

/// One (algorithm, size, cap) study record.
struct ConfigRecord {
  Algorithm algorithm{};
  vis::Id size = 0;
  double capWatts = 0.0;
  Measurement measurement;
  Ratios ratios;  ///< against the default (first) cap of the same pair
};

/// The study driver.  Safe to share across threads: the memoization maps
/// are lock-protected and a characterization in flight is joined by
/// concurrent requests for the same (algorithm, size) rather than rerun
/// (the service layer issues these from several request workers at once).
class Study {
 public:
  explicit Study(StudyConfig config = {});

  /// Characterize (run for real) `algorithm` on the `size`^3 dataset;
  /// memoized.  The returned profile covers a single visualization cycle.
  /// If the context's token cancels mid-kernel the characterization
  /// throws util::CancelledError and leaves the memo and disk caches
  /// untouched (a later uncancelled call re-runs from scratch).
  const vis::KernelProfile& characterize(util::ExecutionContext& ctx,
                                         Algorithm algorithm, vis::Id size);
  const vis::KernelProfile& characterize(Algorithm algorithm, vis::Id size);

  /// Characterize with request-supplied parameter overrides (the service
  /// layer's per-request advection knobs).  Shares the memoized dataset
  /// and the on-disk profile cache (whose key covers the overridden
  /// parameters), but NOT the in-memory memo — that map is keyed on
  /// (algorithm, size) under the configured params only.  Returns by
  /// value.
  vis::KernelProfile characterizeWith(util::ExecutionContext& ctx,
                                      Algorithm algorithm, vis::Id size,
                                      const AlgorithmParams& params);

  /// Evaluate one configuration (characterize + model under the cap,
  /// repeated for the configured cycle count).
  Measurement measure(util::ExecutionContext& ctx, Algorithm algorithm,
                      vis::Id size, double capWatts);
  Measurement measure(Algorithm algorithm, vis::Id size, double capWatts);
  /// Same, overriding the configured cycle count (the service layer
  /// evaluates per-request cycle counts against one shared Study).
  Measurement measure(util::ExecutionContext& ctx, Algorithm algorithm,
                      vis::Id size, double capWatts, int cycles);
  Measurement measure(Algorithm algorithm, vis::Id size, double capWatts,
                      int cycles);

  /// Measure with request-supplied parameter overrides (see
  /// characterizeWith — shares the disk cache, not the in-memory memo).
  Measurement measureWith(util::ExecutionContext& ctx, Algorithm algorithm,
                          vis::Id size, double capWatts, int cycles,
                          const AlgorithmParams& params);

  /// All caps for one (algorithm, size); ratios are against caps[0].
  std::vector<ConfigRecord> capSweep(util::ExecutionContext& ctx,
                                     Algorithm algorithm, vis::Id size);
  std::vector<ConfigRecord> capSweep(Algorithm algorithm, vis::Id size);
  /// Same, overriding the configured cap list and cycle count.
  std::vector<ConfigRecord> capSweep(util::ExecutionContext& ctx,
                                     Algorithm algorithm, vis::Id size,
                                     const std::vector<double>& capsWatts,
                                     int cycles);
  std::vector<ConfigRecord> capSweep(Algorithm algorithm, vis::Id size,
                                     const std::vector<double>& capsWatts,
                                     int cycles);
  /// Cap sweep with request-supplied parameter overrides.  The kernel
  /// characterizes ONCE under `params` (characterizeWith), then every
  /// cap is evaluated on the package model — a request with nine caps
  /// costs one kernel run, exactly like the memoized configured-params
  /// path.
  std::vector<ConfigRecord> capSweepWith(util::ExecutionContext& ctx,
                                         Algorithm algorithm, vis::Id size,
                                         const std::vector<double>& capsWatts,
                                         int cycles,
                                         const AlgorithmParams& params);

  /// Phase 1: contour at 128^3 across all caps (9 tests).
  std::vector<ConfigRecord> runPhase1(util::ExecutionContext& ctx);
  std::vector<ConfigRecord> runPhase1();
  /// Phase 2: all algorithms at 128^3 across all caps (72 tests).
  std::vector<ConfigRecord> runPhase2(util::ExecutionContext& ctx);
  std::vector<ConfigRecord> runPhase2();
  /// Phase 3: the full matrix (288 tests at full scope).
  std::vector<ConfigRecord> runPhase3(util::ExecutionContext& ctx);
  std::vector<ConfigRecord> runPhase3();

  /// The dataset used for characterization at `size` (memoized).
  const vis::UniformGrid& dataset(vis::Id size);

  const StudyConfig& config() const { return config_; }

 private:
  using ProfileKey = std::pair<int, vis::Id>;

  /// Model one characterized cycle profile under a cap: work-scale,
  /// repeat for `cycles`, simulate.  The shared tail of measure and
  /// measureWith.
  Measurement modelProfile(util::ExecutionContext& ctx, Algorithm algorithm,
                           const vis::KernelProfile& once, double capWatts,
                           int cycles);

  StudyConfig config_;
  ExecutionSimulator simulator_;
  std::mutex datasetMutex_;  ///< guards datasets_ (incl. generation)
  std::map<vis::Id, std::unique_ptr<vis::UniformGrid>> datasets_;
  std::mutex profileMutex_;  ///< guards profiles_ and inFlight_
  std::condition_variable profileReady_;
  std::map<ProfileKey, vis::KernelProfile> profiles_;
  std::set<ProfileKey> inFlight_;  ///< keys being characterized right now
  std::mutex diskCacheMutex_;  ///< serializes the cache read-modify-write
};

/// Serialize/load characterization profiles (the on-disk cache format).
/// Saving is atomic: the cache is written to a temporary file in the same
/// directory and renamed into place, so a concurrent reader (another
/// bench binary or server worker sharing --cache) never sees a torn file.
void saveProfileCache(
    const std::string& path,
    const std::map<std::string, vis::KernelProfile>& entries);
std::map<std::string, vis::KernelProfile> loadProfileCache(
    const std::string& path);

}  // namespace pviz::core
