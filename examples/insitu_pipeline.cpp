// In situ pipeline scenario: a CloverLeaf simulation tightly coupled
// with visualization (they alternate on the same package), run three
// ways — uncapped, naively capped, and with the paper's insight applied
// (viz capped low, simulation left alone).
//
//   $ ./insitu_pipeline
#include <iostream>

#include "core/pipeline.h"
#include "util/exec_context.h"
#include "util/table.h"

int main() {
  using namespace pviz;

  core::PipelineConfig config;
  config.cellsPerAxis = 24;
  config.simStepsPerCycle = 150;  // viz lands at the paper's 10-20% share
  config.cycles = 4;
  config.algorithms = {core::Algorithm::Contour,
                       core::Algorithm::RayTracing};
  config.params = core::AlgorithmParams::lightRendering();
  config.params.cameraCount = 10;
  config.params.sampledCameraCount = 4;

  struct Scenario {
    const char* name;
    double simCap;
    double vizCap;
  };
  const Scenario scenarios[] = {
      {"uncapped", 120.0, 120.0},
      {"uniform 60W cap", 60.0, 60.0},
      {"advised: viz at 45W, sim free", 120.0, 45.0},
  };

  util::TextTable table;
  table.setHeader({"Scenario", "Total(s)", "Viz share", "Avg power(W)",
                   "Energy(kJ)"});
  util::ExecutionContext ctx;
  for (const Scenario& scenario : scenarios) {
    config.simCapWatts = scenario.simCap;
    config.vizCapWatts = scenario.vizCap;
    ctx.beginRun();
    const core::PipelineReport report = core::runInSituPipeline(ctx, config);
    table.addRow({scenario.name,
                  util::formatFixed(report.totalSeconds, 2),
                  util::formatFixed(report.vizFraction * 100, 1) + "%",
                  util::formatFixed(report.averageWatts(), 1),
                  util::formatFixed(report.totalEnergyJoules / 1e3, 2)});
  }
  table.print(std::cout);
  std::cout
      << "\nthe advised scenario keeps nearly all of the uncapped speed "
         "while cutting average power —\nthe visualization phase simply "
         "does not need the watts (paper §VII)\n";
  return 0;
}
