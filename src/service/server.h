// The PowerViz service server: a concurrent TCP front end over the
// ServiceEngine.
//
// Threading model
//   * one accept thread (poll with a short timeout, so shutdown needs
//     no signal tricks),
//   * one reader thread per connection (bounded by maxConnections;
//     finished readers are reaped on the next accept),
//   * a fixed pool of request workers draining one bounded queue.
//
// Admission control and backpressure: a request that arrives while the
// queue is full is answered immediately with an `overloaded` response
// instead of being buffered — queue depth, not client count, bounds the
// server's memory and its worst-case latency.  A connection past
// maxConnections gets a single `overloaded` line and is closed (shed).
//
// Robustness against misbehaving clients: the reader enforces a hard
// frame-size bound (one `error` reply, then the connection closes — the
// frame boundary is lost), an idle deadline, and a stalled-frame
// deadline that cuts off slow-loris writers; the JSON parser refuses
// nesting deeper than maxJsonDepth; workers drop requests whose
// wall-clock budget expired while queued (`error` reply, `timeouts`
// counter) rather than doing stale work.  A request that was dispatched
// in time carries its remaining budget into the engine as a cancellation
// deadline: the kernel polls it at phase and chunk boundaries and stops
// mid-run when it expires (`error` reply, `cancelled` counter), leaving
// the result and characterization caches untouched.  All violations are
// counted in the `stats` payload (timeouts / cancelled / rejected_frames
// / shed_connections).
//
// Shutdown is drain-and-stop: stop() (the SIGINT path in
// powerviz_serve) stops accepting connections and reading new requests,
// lets the workers finish every queued request, writes those responses,
// then closes the sockets and joins all threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/engine.h"
#include "service/metrics.h"
#include "telemetry/trace_sink.h"

namespace pviz::service {

struct ServerConfig {
  std::string host = "127.0.0.1";  ///< listen address (localhost only)
  int port = 0;                    ///< 0 = ephemeral, see Server::port()
  int workers = 4;                 ///< request worker threads
  std::size_t maxQueueDepth = 64;  ///< admission-control bound
  std::size_t maxConnections = 64;
  std::size_t maxFrameBytes = 1 << 20;  ///< request frame size bound
  std::size_t maxJsonDepth = 64;        ///< request JSON nesting bound

  // Deadlines, all in milliseconds; 0 disables the check.  Enforced by
  // the per-connection reader's poll loop (idle / stalled frame) and at
  // worker dequeue (request budget), with ~100 ms granularity.  The
  // frame deadline is deliberately tight: a well-behaved localhost
  // client writes a full 1 MiB frame in well under a second, so a frame
  // still incomplete after 5 s is a slow-loris writer, not a slow link.
  int idleTimeoutMs = 300000;    ///< no bytes at all on the connection
  int frameTimeoutMs = 5000;     ///< a started frame that never finishes
                                 ///< (slow-loris writers)
  int requestTimeoutMs = 0;      ///< queue-to-dispatch wall-clock budget

  /// Per-op p99 latency objectives in milliseconds (op token → target),
  /// e.g. {{"study", 250.0}}.  Ops listed here feed the SLO burn-rate
  /// gauges and the slow-request event log; unknown op tokens are
  /// rejected at construction.
  std::vector<std::pair<std::string, double>> sloP99Ms;

  /// Retained trace-buffer bound: spans of fleet-traced requests kept
  /// for the `trace_dump` op, oldest dropped first.
  std::size_t traceBufferSpans = 8192;

  EngineConfig engine;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();  ///< stops (draining) if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the threads; throws pviz::Error on failure.
  void start();

  /// The bound port (the ephemeral one when config.port was 0).
  int port() const { return boundPort_; }

  bool running() const { return started_ && !stopped_; }

  /// Drain and shut down: refuse new work, finish queued requests,
  /// write their responses, close sockets, join threads.  Idempotent.
  void stop();

  ServiceEngine& engine() { return engine_; }
  const ServiceMetrics& metrics() const { return metrics_; }
  ServiceMetrics& metrics() { return metrics_; }

  /// The `stats` payload (metrics snapshot + cache counters).
  Json statsJson() const;

  /// The `metrics` payload: Prometheus text exposition of the registry.
  std::string prometheusText();

  /// Fleet identity assigned via the `register` op (empty when none).
  std::string workerId() const;

 private:
  struct Connection {
    explicit Connection(int fileDescriptor) : fd(fileDescriptor) {}
    ~Connection();
    const int fd;
    std::mutex writeMutex;
    std::atomic<bool> readerDone{false};
  };

  struct Task {
    std::shared_ptr<Connection> conn;
    std::string line;
    std::chrono::steady_clock::time_point enqueued;
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> conn);
  void workerLoop();
  void reapReaders(bool joinAll);

  /// False when the queue is full (the caller answers `overloaded`).
  bool tryEnqueue(Task task);
  /// `ctx` is the worker's long-lived execution context: its arena is
  /// reused across requests, its cancel token reset per request.
  void process(Task& task, util::ExecutionContext& ctx);
  /// register / heartbeat / claim — answered from server state, never
  /// dispatched to the engine.
  Json handleFleetOp(const Request& request);
  /// trace_dump: the retained fleet-trace buffer plus `now_us` for
  /// cross-process clock alignment.
  Json handleTraceDump(const Request& request);
  /// events: recent structured event-ring entries, oldest first.
  Json handleEvents(const Request& request);
  void writeLine(Connection& conn, const std::string& line);
  void respondOverloaded(Connection& conn, const std::string& line);
  /// One `status` reply (error/overloaded) with best-effort id/op echo
  /// scraped from `line` (empty line = no correlation fields).
  void respondStatus(Connection& conn, const std::string& line,
                     const std::string& status, const std::string& message);

  ServerConfig config_;
  ServiceEngine engine_;
  ServiceMetrics metrics_;

  int listenFd_ = -1;
  int boundPort_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::size_t> activeConnections_{0};

  std::thread acceptThread_;
  std::vector<std::thread> workers_;
  std::mutex readersMutex_;
  std::list<std::pair<std::thread, std::shared_ptr<Connection>>> readers_;

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<Task> queue_;

  /// Fleet identity, set by the coordinator's `register` op.
  mutable std::mutex workerIdMutex_;
  std::string workerId_;

  /// Trace-id generator for requests that carry no propagated context:
  /// one local id per processed request, stamped on the worker's
  /// ExecutionContext so phase spans correlate with the request-level
  /// span in the response's `trace` dump.  Requests with a coordinator-
  /// minted `trace_id` use that id instead.
  std::atomic<std::uint64_t> nextTraceId_{1};

  /// Retained spans of fleet-traced requests (nonzero trace_id), served
  /// by the `trace_dump` op.  Bounded by config.traceBufferSpans.
  /// Spans of cancelled requests are never retained: the coordinator
  /// re-dispatches the unit under the same trace id, so keeping the
  /// aborted fragment would leave orphan spans in the merged trace.
  telemetry::TraceSink traceBuffer_;
};

}  // namespace pviz::service
