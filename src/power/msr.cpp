#include "power/msr.h"

#include <sstream>

namespace pviz::power {

MsrFile::MsrFile() {
  allowlist_ = {kMsrRaplPowerUnit, kMsrPkgPowerLimit, kMsrPkgEnergyStatus,
                kMsrAperf, kMsrMperf};
  // RAPL units register: power unit 2^-3 W (0.125 W), energy unit
  // 2^-14 J (~61 uJ), time unit 2^-10 s — the common Broadwell values.
  rawWrite(kMsrRaplPowerUnit, (0x3ull) | (0xEull << 8) | (0xAull << 16));
  rawWrite(kMsrPkgPowerLimit, 0);
  rawWrite(kMsrPkgEnergyStatus, 0);
  rawWrite(kMsrAperf, 0);
  rawWrite(kMsrMperf, 0);
}

std::uint64_t MsrFile::read(std::uint32_t address) const {
  if (!isAllowed(address)) {
    std::ostringstream os;
    os << "msr-safe: read of MSR 0x" << std::hex << address << " denied";
    throw MsrAccessError(os.str());
  }
  return rawRead(address);
}

void MsrFile::write(std::uint32_t address, std::uint64_t value) {
  if (!isAllowed(address)) {
    std::ostringstream os;
    os << "msr-safe: write of MSR 0x" << std::hex << address << " denied";
    throw MsrAccessError(os.str());
  }
  rawWrite(address, value);
}

std::uint64_t MsrFile::rawRead(std::uint32_t address) const {
  auto it = registers_.find(address);
  return it == registers_.end() ? 0 : it->second;
}

void MsrFile::rawWrite(std::uint32_t address, std::uint64_t value) {
  registers_[address] = value;
}

}  // namespace pviz::power
