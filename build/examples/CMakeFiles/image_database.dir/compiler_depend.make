# Empty compiler generated dependencies file for image_database.
# This may be replaced when dependencies are built.
