#include "core/pipeline.h"

#include <utility>

#include "util/exec_context.h"
#include "viz/dataset/field.h"

namespace pviz::core {

PipelineReport runInSituPipeline(const PipelineConfig& config) {
  util::ExecutionContext ctx;
  return runInSituPipeline(ctx, config);
}

PipelineReport runInSituPipeline(util::ExecutionContext& ctx,
                                 const PipelineConfig& config) {
  PVIZ_REQUIRE(config.cycles >= 1, "pipeline needs at least one cycle");
  PVIZ_REQUIRE(!config.algorithms.empty(),
               "pipeline needs at least one algorithm");

  sim::CloverLeaf clover(config.cellsPerAxis);
  ExecutionSimulator simulator(config.machine, config.simulator);

  PipelineReport report;
  double vizSecondsTotal = 0.0;
  std::vector<double> previousVelocity;  // last cycle's velocity samples

  for (int cycle = 0; cycle < config.cycles; ++cycle) {
    ctx.cancel().throwIfCancelled();  // per-cycle cancellation point
    CycleReport cr;
    cr.cycle = cycle;

    // --- Simulation phase under the simulation cap. ----------------------
    clover.run(config.simStepsPerCycle);
    const vis::KernelProfile simProfile =
        scaleKernelWork(clover.takeProfile(), config.workScale);
    const Measurement simRun =
        simulator.run(simProfile, config.simCapWatts, &ctx.cancel());
    cr.simSeconds = simRun.seconds;
    cr.simWatts = simRun.averageWatts;

    // --- Visualization phase under the visualization cap. ----------------
    vis::UniformGrid dataset = clover.exportForViz();
    if (config.params.advectionMode == "pathline") {
      // Pathline advection traces the unsteady flow across one cycle:
      // attach the previous cycle's velocity so the filter interpolates
      // velocity_prev → velocity in integration time.  Cycle 0 has no
      // predecessor and degenerates to a steady window (the filter
      // falls back to velocity → velocity).
      if (!previousVelocity.empty()) {
        dataset.addField(vis::Field("velocity_prev", vis::Association::Points,
                                    3, previousVelocity));
      }
      previousVelocity = dataset.field("velocity").data();
    }
    for (Algorithm algorithm : config.algorithms) {
      const vis::KernelProfile vizProfile =
          scaleKernelWork(runAlgorithm(ctx, algorithm, dataset, config.params),
                          config.workScale);
      const Measurement vizRun =
          simulator.run(vizProfile, config.vizCapWatts, &ctx.cancel());
      cr.vizSeconds += vizRun.seconds;
      cr.vizWatts += vizRun.averageWatts * vizRun.seconds;
      report.totalEnergyJoules += vizRun.energyJoules;
    }
    if (cr.vizSeconds > 0.0) cr.vizWatts /= cr.vizSeconds;

    report.totalEnergyJoules += simRun.energyJoules;
    report.totalSeconds += cr.simSeconds + cr.vizSeconds;
    vizSecondsTotal += cr.vizSeconds;
    report.cycles.push_back(cr);
  }

  report.vizFraction =
      report.totalSeconds > 0.0 ? vizSecondsTotal / report.totalSeconds : 0.0;
  return report;
}

}  // namespace pviz::core
