// Power advisor tests: classification and budget planning.
#include <gtest/gtest.h>

#include "core/power_advisor.h"

namespace pviz::core {
namespace {

vis::KernelProfile hotKernel() {
  vis::KernelProfile k;
  k.kernel = "simulation";
  k.elements = 1 << 20;
  vis::WorkProfile& p = k.addPhase("hydro");
  p.flops = 6e10;
  p.intOps = 2e10;
  p.memOps = 1.5e10;
  p.bytesStreamed = 2e9;
  p.bytesReused = 5e9;
  p.workingSetBytes = 1e6;
  p.parallelFraction = 0.99;
  p.overlap = 0.8;
  return k;
}

vis::KernelProfile coolKernel() {
  vis::KernelProfile k;
  k.kernel = "viz";
  k.elements = 1 << 20;
  vis::WorkProfile& p = k.addPhase("stream");
  // Contour-like: latency-bound gathers over a cache-resident field
  // with moderate streaming — a low-draw power donor.
  p.flops = 1e9;
  p.intOps = 3e9;
  p.memOps = 3e9;
  p.bytesStreamed = 1.5e10;
  p.irregularAccesses = 2.5e9;
  p.workingSetBytes = 1e7;
  p.parallelFraction = 0.99;
  p.overlap = 0.9;
  return k;
}

TEST(PowerAdvisor, ClassifiesComputeBoundAsPowerSensitive) {
  PowerAdvisor advisor;
  const Classification c = advisor.classify(hotKernel());
  EXPECT_FALSE(c.powerOpportunity);
  EXPECT_GT(c.kneeCapWatts, 60.0);
  EXPECT_GT(c.drawAtTdpWatts, 75.0);
  EXPECT_GT(c.slowdownAtMinCap, 1.4);
  EXPECT_GT(c.ipcAtTdp, 1.0);
}

TEST(PowerAdvisor, ClassifiesMemoryBoundAsPowerOpportunity) {
  PowerAdvisor advisor;
  const Classification c = advisor.classify(coolKernel());
  EXPECT_TRUE(c.powerOpportunity);
  EXPECT_LE(c.kneeCapWatts, 60.0);
  EXPECT_LT(c.drawAtTdpWatts, 70.0);
  EXPECT_LT(c.ipcAtTdp, 1.0);
}

TEST(PowerAdvisor, ClassificationValidatesInput) {
  PowerAdvisor advisor;
  EXPECT_THROW(advisor.classify(coolKernel(), {}), Error);
}

TEST(PowerAdvisor, BudgetPlanRespectsTheBudget) {
  PowerAdvisor advisor;
  const BudgetPlan plan =
      advisor.planBudget(hotKernel(), coolKernel(), 70.0);
  EXPECT_LE(plan.predictedAverageWatts, 70.0 + 0.5);
  EXPECT_GE(plan.simCapWatts, 70.0);          // sim got the freed headroom
  EXPECT_LE(plan.vizCapWatts, plan.simCapWatts);  // viz never out-caps sim
  EXPECT_GE(plan.speedupVsUniform, 1.0 - 1e-9);   // never worse than naive
  EXPECT_GT(plan.predictedSeconds, 0.0);
  EXPECT_GT(plan.uniformSeconds, 0.0);
}

TEST(PowerAdvisor, AdvisedPlanBeatsUniformUnderATightBudget) {
  PowerAdvisor advisor;
  const BudgetPlan plan =
      advisor.planBudget(hotKernel(), coolKernel(), 65.0);
  // The whole point of the paper: reallocating power from the
  // insensitive viz phase to the hungry simulation wins wall time.
  // The viz phase draws well under the budget, so the advisor can run
  // the simulation above it while the time-weighted average complies.
  EXPECT_GT(plan.speedupVsUniform, 1.01);
  EXPECT_GT(plan.simCapWatts, 65.0);
}

TEST(PowerAdvisor, GenerousBudgetConvergesToUncapped) {
  PowerAdvisor advisor;
  const BudgetPlan plan =
      advisor.planBudget(hotKernel(), coolKernel(), 120.0);
  EXPECT_NEAR(plan.speedupVsUniform, 1.0, 0.1);
}

TEST(PowerAdvisor, RejectsBadBudget) {
  PowerAdvisor advisor;
  EXPECT_THROW(advisor.planBudget(hotKernel(), coolKernel(), 0.0), Error);
}

// Property: the knee is monotone in the kernel's appetite — scaling the
// compute intensity up never moves the knee to a lower cap.
class AdvisorKneeSweep : public ::testing::TestWithParam<double> {};

TEST_P(AdvisorKneeSweep, KneeTracksComputeIntensity) {
  PowerAdvisor advisor;
  vis::KernelProfile base = coolKernel();
  vis::KernelProfile scaled = base;
  scaled.phases[0].flops *= GetParam();
  scaled.phases[0].intOps *= GetParam();
  const Classification a = advisor.classify(base);
  const Classification b = advisor.classify(scaled);
  EXPECT_GE(b.kneeCapWatts, a.kneeCapWatts - 1e-9);
  EXPECT_GE(b.drawAtTdpWatts, a.drawAtTdpWatts - 1.0);
}

INSTANTIATE_TEST_SUITE_P(Intensities, AdvisorKneeSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 30.0));

}  // namespace
}  // namespace pviz::core
