// Compatibility-shim marker for the context-free kernel entry points.
//
// Every filter/renderer keeps a context-free `run(grid, ...)` overload
// that builds a fresh ExecutionContext over the process-global pool per
// call — convenient in tests, wasteful anywhere perf matters (a cold
// scratch arena every run).  Consumers that have finished migrating to
// the ctx-first overloads define POWERVIZ_STRICT_CONTEXT to turn any
// remaining shim call into a deprecation warning; the bench, example
// and tool targets build with the define plus
// -Werror=deprecated-declarations, so a new shim caller in those trees
// fails CI at compile time instead of slipping through review.
#pragma once

#if defined(POWERVIZ_STRICT_CONTEXT)
#define PVIZ_CONTEXT_SHIM                                             \
  [[deprecated("context-free shim: pass a util::ExecutionContext "    \
               "(built with POWERVIZ_STRICT_CONTEXT)")]]
#else
#define PVIZ_CONTEXT_SHIM
#endif
