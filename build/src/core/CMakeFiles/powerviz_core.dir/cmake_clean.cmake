file(REMOVE_RECURSE
  "CMakeFiles/powerviz_core.dir/algorithms.cpp.o"
  "CMakeFiles/powerviz_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/powerviz_core.dir/execution_sim.cpp.o"
  "CMakeFiles/powerviz_core.dir/execution_sim.cpp.o.d"
  "CMakeFiles/powerviz_core.dir/node_sim.cpp.o"
  "CMakeFiles/powerviz_core.dir/node_sim.cpp.o.d"
  "CMakeFiles/powerviz_core.dir/pipeline.cpp.o"
  "CMakeFiles/powerviz_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/powerviz_core.dir/power_advisor.cpp.o"
  "CMakeFiles/powerviz_core.dir/power_advisor.cpp.o.d"
  "CMakeFiles/powerviz_core.dir/report.cpp.o"
  "CMakeFiles/powerviz_core.dir/report.cpp.o.d"
  "CMakeFiles/powerviz_core.dir/study.cpp.o"
  "CMakeFiles/powerviz_core.dir/study.cpp.o.d"
  "libpowerviz_core.a"
  "libpowerviz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powerviz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
