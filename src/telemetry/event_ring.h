// Lock-free structured event ring buffer.
//
// The service keeps a bounded log of notable moments — slow requests,
// admission rejections, shed connections, cancellations, worker state
// transitions — that a scrape-style `events` op can drain without
// stopping the world.  Writers never block and never allocate: a writer
// claims a slot with one fetch_add on the head ticket, then publishes
// the payload word-by-word through relaxed atomic stores bracketed by a
// per-slot sequence (seqlock).  Readers validate the sequence before and
// after copying; a slot overwritten mid-read is simply skipped, so under
// extreme pressure the ring is lossy-oldest rather than a contention
// point.  This mirrors the MetricRegistry discipline: observability must
// never become the bottleneck it is measuring.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace pviz::telemetry {

enum class EventKind : std::uint8_t {
  SlowRequest,    ///< latency exceeded the op's SLO objective
  Overloaded,     ///< admission control rejected a request
  Timeout,        ///< request hit its server-side deadline
  Cancelled,      ///< request was cancelled mid-flight
  ConnectionShed, ///< connection dropped at the accept/idle limit
  WorkerState,    ///< fleet registry state transition (Alive→Suspect→Dead)
  Lifecycle,      ///< server/coordinator start, stop, register
};

/// Wire/log token for an event kind ("slow_request", ...).
const char* eventKindToken(EventKind kind);

/// One ring entry.  Fixed-size, trivially copyable: the ring stores it
/// as atomic words, so strings are truncated to the field widths.
struct Event {
  std::uint64_t seq = 0;     ///< publish ticket (monotonic, gap-free)
  std::uint64_t timeUs = 0;  ///< telemetry::traceNowUs() at emit
  EventKind kind = EventKind::Lifecycle;
  double value = 0.0;        ///< kind-specific magnitude (latency ms, ...)
  char op[24] = {};          ///< request op token, if any
  char detail[96] = {};      ///< free-form detail ("w1 alive->suspect")
};

class EventRing {
 public:
  /// Capacity is rounded up to a power of two; default 1024 entries.
  explicit EventRing(std::size_t capacity = 1024);
  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Publish one event.  Wait-free for writers apart from the slot
  /// stores; `op` and `detail` are truncated to the Event field widths.
  void emit(EventKind kind, std::string_view op, std::string_view detail,
            double value = 0.0) noexcept;

  /// Snapshot up to `limit` most-recent events, oldest first
  /// (0 = everything still resident).  Entries overwritten while being
  /// copied are skipped.
  std::vector<Event> recent(std::size_t limit = 0) const;

  /// Total events ever emitted (including ones already overwritten).
  std::uint64_t totalEmitted() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  static constexpr std::size_t kWords = sizeof(Event) / sizeof(std::uint64_t);
  static_assert(sizeof(Event) % sizeof(std::uint64_t) == 0,
                "Event must pack into whole words");

  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = empty; 2t+1 writing; 2t+2 done
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace pviz::telemetry
