// Work-stealing batch scheduler: `parallelWorkSteal` runs `body(slot,
// b, e)` over [0, count) in `batch`-sized ranges, load-balanced by
// letting idle workers steal half of a busy worker's remaining batches.
//
// Built for particle advection (util/parallel.h's static chunking
// collapses when per-element cost varies by orders of magnitude —
// particles exit the domain or converge at wildly different step
// counts, so the slowest chunk dominates wall-clock), but generic over
// any body whose per-range work is unpredictable.
//
// Determinism contract, same as every primitive in util/parallel.h: the
// schedule decides only WHO runs a range and WHEN, never WHAT a range
// is.  Ranges are cut from [0, count) on fixed `batch` boundaries
// before any worker starts, a range is executed exactly once and never
// re-split, and `slot` identifies a deque (a storage lane callers may
// use for per-worker accumulation), not a thread.  A body whose output
// for range [b, e) depends only on (b, e) and its inputs — with any
// per-slot storage merged in a slot-independent order afterwards — is
// therefore bit-identical across backends, pool sizes, and steal
// interleavings.  On the serial backend (or a 1-slot schedule) the
// ranges run front-to-back in index order: that is the reference
// schedule the threaded runs must match.
//
// Stealing invariants:
//   * every range is executed exactly once: ranges move between deques
//     only under the victim's mutex, and a popped range is run by the
//     popper before it touches any deque again;
//   * a worker only goes idle when every deque it scanned was empty —
//     and since bodies never enqueue new ranges, "all deques empty" is
//     a stable termination condition, not a race;
//   * thieves take the BACK half of the victim's deque (oldest-last
//     ranges), so the victim keeps popping from the front with minimal
//     contention and locality.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "util/backend.h"
#include "util/error.h"
#include "util/exec_context.h"
#include "util/parallel.h"

namespace pviz::util {

/// Observability counters for one parallelWorkSteal call.  Scheduling
/// artifacts, NOT outputs: `steals` depends on timing and must never
/// feed a determinism comparison.
struct WorkStealStats {
  std::int64_t batches = 0;  ///< ranges executed (schedule-invariant)
  std::int64_t steals = 0;   ///< successful steal transactions (timing-dependent)
};

namespace detail {

struct StealRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

/// One per-worker deque.  A plain mutex per deque is the right tool at
/// this granularity: a batch is hundreds of RK4 rounds, so the lock is
/// touched at ~kHz, not MHz, and the mutex keeps owner-pop and
/// steal-half atomic without a Chase-Lev proof obligation.
struct StealDeque {
  std::mutex mutex;
  std::deque<StealRange> ranges;
};

}  // namespace detail

/// Run `body(slot, b, e)` over every batch-aligned range [b, e) of
/// [0, count), work-stealing across the context's concurrency.  `slot`
/// is in [0, slots) where slots = max(1, ctx.concurrency()); ranges are
/// seeded slot-contiguously (slot w owns an equal contiguous span of
/// [0, count)), and body invocations for the same slot never overlap in
/// time, so bodies may keep unsynchronized per-slot state.  Polls
/// ctx.cancel() at batch boundaries.  Returns scheduling stats.
template <typename Body>
WorkStealStats parallelWorkSteal(ExecutionContext& ctx, std::int64_t count,
                                 std::int64_t batch, Body&& body) {
  PVIZ_REQUIRE(batch > 0, "parallelWorkSteal batch must be positive");
  WorkStealStats stats;
  if (count <= 0) return stats;

  const std::int64_t slots =
      static_cast<std::int64_t>(std::max(1u, ctx.concurrency()));
  // Seed each slot's deque with its contiguous span of batches, before
  // any worker runs.  The cut points depend only on (count, batch,
  // slots) — the schedule never re-cuts them.
  std::vector<detail::StealDeque> deques(static_cast<std::size_t>(slots));
  const std::int64_t perSlot = (count + slots - 1) / slots;
  for (std::int64_t w = 0; w < slots; ++w) {
    const std::int64_t lo = std::min(count, w * perSlot);
    const std::int64_t hi = std::min(count, lo + perSlot);
    auto& dq = deques[static_cast<std::size_t>(w)].ranges;
    for (std::int64_t b = lo; b < hi; b += batch) {
      dq.push_back({b, std::min(hi, b + batch)});
    }
  }

  std::atomic<std::int64_t> batchesRun{0};
  std::atomic<std::int64_t> stealsDone{0};
  CancelToken* cancel = &ctx.cancel();

  auto runWorker = [&](std::int64_t self) {
    auto& own = deques[static_cast<std::size_t>(self)];
    std::int64_t ran = 0;
    std::int64_t stole = 0;
    for (;;) {
      detail::pollCancel(cancel);
      detail::StealRange next{0, 0};
      bool have = false;
      {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.ranges.empty()) {
          next = own.ranges.front();
          own.ranges.pop_front();
          have = true;
        }
      }
      if (!have) {
        // Own deque drained: scan the other slots and take half of the
        // first non-empty victim's BACK (round up, so a 1-range victim
        // still yields).  The first looted range runs immediately; the
        // rest land in our own deque.
        for (std::int64_t d = 1; d < slots && !have; ++d) {
          auto& victim = deques[static_cast<std::size_t>((self + d) % slots)];
          std::lock_guard<std::mutex> lock(victim.mutex);
          const std::int64_t avail =
              static_cast<std::int64_t>(victim.ranges.size());
          if (avail == 0) continue;
          const std::int64_t take = (avail + 1) / 2;
          next = victim.ranges.back();
          victim.ranges.pop_back();
          have = true;
          ++stole;
          if (take > 1) {
            std::lock_guard<std::mutex> ownLock(own.mutex);
            for (std::int64_t t = 1; t < take; ++t) {
              own.ranges.push_back(victim.ranges.back());
              victim.ranges.pop_back();
            }
          }
        }
      }
      if (!have) break;  // every deque empty: done (bodies never enqueue)
      body(self, next.begin, next.end);
      ++ran;
    }
    batchesRun.fetch_add(ran, std::memory_order_relaxed);
    stealsDone.fetch_add(stole, std::memory_order_relaxed);
  };

  // One dispatch index per slot, grain 1.  The backend may merge the
  // slot range (serial backend, or a pool running the loop inline), in
  // which case one thread walks the slots in order — exactly the serial
  // reference schedule.
  detail::dispatchChunks(ctx.backend(), ctx.pool(), cancel, 0, slots, 1,
                         [&](std::int64_t wb, std::int64_t we) {
                           for (std::int64_t w = wb; w < we; ++w) {
                             runWorker(w);
                           }
                         });

  stats.batches = batchesRun.load(std::memory_order_relaxed);
  stats.steals = stealsDone.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace pviz::util
