#include "telemetry/energy_attribution.h"

#include <cmath>
#include <cstdio>

#include "telemetry/trace_sink.h"

namespace pviz::telemetry {

namespace {

std::uint64_t clockUs(std::uint64_t nowUs) {
  return nowUs != 0 ? nowUs : traceNowUs();
}

std::uint64_t microjoules(double joules) {
  return joules > 0.0
             ? static_cast<std::uint64_t>(std::llround(joules * 1e6))
             : 0;
}

std::string capLabel(double capWatts) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", capWatts);
  return buf;
}

}  // namespace

EnergyAttributor::EnergyAttributor(MetricRegistry& registry)
    : registry_(registry),
      requestJoules_(registry.histogram(
          "pviz_request_joules", {},
          "Simulated package energy attributed per request")),
      energyRequests_(registry.counter(
          "pviz_energy_requests_total", {},
          "Requests that were credited simulated kernel energy")),
      overlapMicrojoules_(registry.counter(
          "pviz_energy_overlap_microjoules_total", {},
          "Energy deposited while two or more requests shared the "
          "package")) {}

void EnergyAttributor::elapseLocked(std::uint64_t nowUs) {
  if (nowUs > lastEventUs_ && active_.size() >= 2) {
    // Requests join the active set at an elapse boundary (beginRequest
    // elapses before inserting), so every active request spans the whole
    // [lastEventUs_, nowUs) interval.
    const double dt = static_cast<double>(nowUs - lastEventUs_);
    for (auto& [token, request] : active_) request.overlapUs += dt;
  }
  if (nowUs > lastEventUs_) lastEventUs_ = nowUs;
}

void EnergyAttributor::beginRequest(std::uint64_t token, const std::string& op,
                                    std::uint64_t nowUs) {
  const std::uint64_t now = clockUs(nowUs);
  std::lock_guard lock(mutex_);
  elapseLocked(now);
  ActiveRequest& request = active_[token];
  request.op = op;
  request.startUs = now;
}

void EnergyAttributor::recordRun(std::uint64_t token,
                                 const std::string& algorithm, double capWatts,
                                 double joules, double seconds) {
  (void)seconds;
  std::lock_guard lock(mutex_);
  const auto it = active_.find(token);
  if (it == active_.end()) return;
  ActiveRequest& request = it->second;
  request.joules += joules;
  request.runs += 1;
  for (ActiveRun& run : request.byRun) {
    if (run.algorithm == algorithm && run.capWatts == capWatts) {
      run.joules += joules;
      run.count += 1;
      return;
    }
  }
  ActiveRun run;
  run.algorithm = algorithm;
  run.capWatts = capWatts;
  run.joules = joules;
  run.count = 1;
  request.byRun.push_back(std::move(run));
}

EnergyAttributor::RequestEnergy EnergyAttributor::endRequest(
    std::uint64_t token, std::uint64_t nowUs) {
  const std::uint64_t now = clockUs(nowUs);
  RequestEnergy result;

  std::lock_guard lock(mutex_);
  elapseLocked(now);
  const auto it = active_.find(token);
  if (it == active_.end()) return result;
  ActiveRequest request = std::move(it->second);
  active_.erase(it);

  const double windowUs =
      now > request.startUs ? static_cast<double>(now - request.startUs) : 0.0;
  result.joules = request.joules;
  result.activeUs = windowUs;
  result.runs = request.runs;
  if (windowUs > 0.0 && request.overlapUs > 0.0) {
    const double fraction =
        request.overlapUs < windowUs ? request.overlapUs / windowUs : 1.0;
    result.overlapJoules = request.joules * fraction;
  }
  if (request.runs == 0) return result;

  // Fold into the exact aggregates.
  totals_.totalJoules += request.joules;
  totals_.overlapJoules += result.overlapJoules;
  totals_.requests += 1;
  std::map<std::string, bool> touched;
  for (const ActiveRun& run : request.byRun) {
    AlgorithmEnergy& alg = totals_.byAlgorithm[run.algorithm];
    alg.joules += run.joules;
    alg.runs += run.count;
    if (!touched[run.algorithm]) {
      touched[run.algorithm] = true;
      alg.requests += 1;
    }
    CapEnergy& cap = totals_.byCap[run.capWatts];
    cap.joules += run.joules;
    cap.runs += run.count;
  }

  // Prometheus instruments (micro-joule integer counters merge exactly;
  // per-series registration is get-or-create and cold-path).
  requestJoules_.record(request.joules);
  energyRequests_.inc();
  overlapMicrojoules_.inc(microjoules(result.overlapJoules));
  for (const ActiveRun& run : request.byRun) {
    registry_
        .counter("pviz_algorithm_microjoules_total",
                 {{"algorithm", run.algorithm}},
                 "Simulated energy attributed per algorithm")
        .inc(microjoules(run.joules));
    registry_
        .counter("pviz_cap_microjoules_total", {{"cap", capLabel(run.capWatts)}},
                 "Simulated energy attributed per power cap")
        .inc(microjoules(run.joules));
  }
  return result;
}

EnergyAttributor::Summary EnergyAttributor::summary() const {
  std::lock_guard lock(mutex_);
  return totals_;
}

}  // namespace pviz::telemetry
