# Empty dependencies file for profile_inspector.
# This may be replaced when dependencies are built.
