# Empty dependencies file for test_isovolume.
# This may be replaced when dependencies are built.
