// service_loadgen — concurrent load generator for powerviz_serve.
//
//   ./bench/service_loadgen                # in-process server, 8 clients
//   ./bench/service_loadgen --port 7077    # against a running server
//
// Each client thread opens its own connection and issues a mix of
// classify / budget / stats requests drawn from a small configuration
// set, so after the first pass every heavy request is a cache hit.
// Reports per-op throughput, latency percentiles, the cold-vs-cached
// latency ratio for the repeated requests (the acceptance bar is
// >= 10x), and the server's own stats counters.
//
// Environment knobs: PVIZ_LOADGEN_CLIENTS, PVIZ_LOADGEN_REQUESTS
// (per client), PVIZ_LOADGEN_SIZE override the defaults (8, 40, 16).
#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/client.h"
#include "service/server.h"
#include "util/options.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace pviz;
using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct ClientResult {
  std::vector<double> classifyMs;
  std::vector<double> budgetMs;
  std::vector<double> statsMs;
  std::vector<double> cachedMs;  ///< heavy requests answered from cache
  std::vector<double> coldMs;    ///< heavy requests computed fresh
  int errors = 0;
  int overloaded = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = -1;  // -1 = spin up an in-process server
  int clients = benchutil::envInt("PVIZ_LOADGEN_CLIENTS", 8);
  int requestsPerClient = benchutil::envInt("PVIZ_LOADGEN_REQUESTS", 40);
  const vis::Id size =
      static_cast<vis::Id>(benchutil::envInt("PVIZ_LOADGEN_SIZE", 16));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        return "";
      }
      return argv[++i];
    };
    if (arg == "--port") port = static_cast<int>(util::parseInt(next(), "--port"));
    else if (arg == "--host") host = next();
    else if (arg == "--clients") clients = static_cast<int>(util::parseInt(next(), "--clients"));
    else if (arg == "--requests") requestsPerClient = static_cast<int>(util::parseInt(next(), "--requests"));
  }

  benchutil::printBanner(
      "service_loadgen — concurrent study/advisor service load",
      "section VII serving scenario (many in situ clients, one advisor)");

  // In-process server unless pointed at a running one.
  std::unique_ptr<service::Server> server;
  if (port < 0) {
    service::ServerConfig config;
    config.port = 0;
    config.workers = 4;
    config.engine.study = benchutil::defaultStudyConfig();
    config.engine.study.params = core::AlgorithmParams::lightRendering();
    config.engine.study.cachePath.clear();
    server = std::make_unique<service::Server>(config);
    server->start();
    port = server->port();
    std::cout << "in-process server on port " << port << "\n";
  }

  // The request mix: two classify targets and one budget target, so
  // every heavy configuration repeats many times across the run.
  const std::vector<core::Algorithm> classifyAlgorithms = {
      core::Algorithm::Contour, core::Algorithm::Threshold};

  std::cout << clients << " clients x " << requestsPerClient
            << " requests, size " << size << "^3\n\n";

  // Warm nothing: the first heavy requests are the cold measurements.
  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  const auto runStart = Clock::now();

  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& out = results[static_cast<std::size_t>(c)];
      try {
        service::ServiceClient client(host, port);
        for (int r = 0; r < requestsPerClient; ++r) {
          service::Request request;
          std::vector<double>* bucket = nullptr;
          switch (r % 4) {
            case 0:
            case 1:
              request.op = service::Op::Classify;
              request.algorithm =
                  classifyAlgorithms[static_cast<std::size_t>(r) %
                                     classifyAlgorithms.size()];
              request.size = size;
              bucket = &out.classifyMs;
              break;
            case 2:
              request.op = service::Op::Budget;
              request.algorithm = core::Algorithm::Contour;
              request.size = size;
              request.budgetWatts = 65.0;
              bucket = &out.budgetMs;
              break;
            default:
              request.op = service::Op::Stats;
              bucket = &out.statsMs;
              break;
          }
          const auto start = Clock::now();
          const service::Response response = client.request(request);
          const double ms = millisSince(start);
          if (response.status == "overloaded") {
            ++out.overloaded;
            continue;
          }
          if (!response.ok()) {
            ++out.errors;
            continue;
          }
          bucket->push_back(ms);
          if (request.op != service::Op::Stats) {
            (response.cached ? out.cachedMs : out.coldMs).push_back(ms);
          }
        }
      } catch (const std::exception& e) {
        std::cerr << "client " << c << ": " << e.what() << '\n';
        ++out.errors;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wallSeconds = millisSince(runStart) / 1000.0;

  // Aggregate.
  std::vector<double> classifyMs, budgetMs, statsMs, cachedMs, coldMs;
  int errors = 0;
  int overloaded = 0;
  for (const ClientResult& r : results) {
    classifyMs.insert(classifyMs.end(), r.classifyMs.begin(), r.classifyMs.end());
    budgetMs.insert(budgetMs.end(), r.budgetMs.begin(), r.budgetMs.end());
    statsMs.insert(statsMs.end(), r.statsMs.begin(), r.statsMs.end());
    cachedMs.insert(cachedMs.end(), r.cachedMs.begin(), r.cachedMs.end());
    coldMs.insert(coldMs.end(), r.coldMs.begin(), r.coldMs.end());
    errors += r.errors;
    overloaded += r.overloaded;
  }
  const std::size_t completed =
      classifyMs.size() + budgetMs.size() + statsMs.size();

  util::TextTable table;
  table.setHeader({"Op", "Count", "p50(ms)", "p95(ms)", "Max(ms)"});
  auto addRow = [&](const char* name, std::vector<double>& ms) {
    if (ms.empty()) return;
    double maxMs = 0.0;
    for (double m : ms) maxMs = std::max(maxMs, m);
    table.addRow({name, std::to_string(ms.size()),
                  util::formatFixed(util::percentile(ms, 0.50), 2),
                  util::formatFixed(util::percentile(ms, 0.95), 2),
                  util::formatFixed(maxMs, 2)});
  };
  addRow("classify", classifyMs);
  addRow("budget", budgetMs);
  addRow("stats", statsMs);
  addRow("heavy/cold", coldMs);
  addRow("heavy/cached", cachedMs);
  table.print(std::cout);

  std::cout << '\n'
            << completed << " requests in "
            << util::formatFixed(wallSeconds, 2) << " s ("
            << util::formatFixed(static_cast<double>(completed) / wallSeconds,
                                 0)
            << " req/s across " << clients << " clients), " << errors
            << " errors, " << overloaded << " overloaded\n";

  if (!coldMs.empty() && !cachedMs.empty()) {
    const double cold = util::percentile(coldMs, 0.50);
    const double cached = util::percentile(cachedMs, 0.50);
    std::cout << "cold p50 " << util::formatFixed(cold, 2)
              << " ms vs cached p50 " << util::formatFixed(cached, 3)
              << " ms: " << util::formatFixed(cold / cached, 1)
              << "x speedup from the result cache\n";
  }

  if (server != nullptr) {
    std::cout << "\nserver stats: " << server->statsJson().dump() << '\n';
    server->stop();
  }
  return errors == 0 ? 0 : 1;
}
