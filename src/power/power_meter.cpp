#include "power/power_meter.h"

namespace pviz::power {

void PowerMeter::start(double simTimeSeconds) {
  started_ = true;
  lastSampleTime_ = simTimeSeconds;
  lastCounter_ = rapl_.readEnergyCounterJoules();
  samples_.clear();
  stats_ = util::RunningStats{};
}

void PowerMeter::advanceTo(double simTimeSeconds) {
  PVIZ_REQUIRE(started_, "PowerMeter::start must be called first");
  while (simTimeSeconds - lastSampleTime_ >= interval_) {
    // NOTE: in the simulator, energy deposits happen before time
    // advances, so reading "now" reflects everything up to simTime.
    // Interpolation error is bounded by one quantum, as on hardware.
    const double counter = rapl_.readEnergyCounterJoules();
    const double joules = rapl_.energyDeltaJoules(lastCounter_, counter);
    lastSampleTime_ += interval_;
    lastCounter_ = counter;
    const double watts = joules / interval_;
    samples_.push_back({lastSampleTime_, watts});
    stats_.add(watts);
  }
}

}  // namespace pviz::power
