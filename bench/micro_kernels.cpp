// Google-benchmark microbenchmarks of the host-side kernels themselves
// (wall-clock on this machine, not the modeled package).  Useful for
// tracking regressions in the actual implementations and for the
// BVH-vs-brute-force ablation the DESIGN calls out.
#include <benchmark/benchmark.h>

#include <chrono>

#include "sim/cloverleaf.h"
#include "telemetry/metric_registry.h"
#include "util/backend.h"
#include "util/exec_context.h"
#include "viz/filters/clip_sphere.h"
#include "viz/filters/contour.h"
#include "viz/filters/isovolume.h"
#include "viz/filters/mc_tables.h"
#include "viz/filters/particle_advection.h"
#include "viz/filters/slice.h"
#include "viz/filters/threshold.h"
#include "viz/rendering/bvh.h"
#include "viz/rendering/external_faces.h"
#include "viz/rendering/ray_tracer.h"
#include "viz/rendering/volume_renderer.h"

namespace {

using namespace pviz;

const vis::UniformGrid& grid(vis::Id size) {
  static std::map<vis::Id, vis::UniformGrid> cache;
  auto it = cache.find(size);
  if (it == cache.end()) {
    it = cache.emplace(size, sim::makeCloverField(size)).first;
  }
  return it->second;
}

void BM_McTableGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(&vis::McTables::instance());
  }
}
BENCHMARK(BM_McTableGeneration);

void BM_Contour(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ContourFilter filter;
  filter.setIsovalues(
      vis::ContourFilter::uniformIsovalues(g.field("energy"), 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.run(g, "energy").surface.numTriangles());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells() * 3);
}
BENCHMARK(BM_Contour)->Arg(16)->Arg(32);

// Arena-reuse mode: the same kernel over one persistent ExecutionContext.
// The plain BM_Contour above goes through the compatibility shim, which
// builds a fresh context — and therefore a cold scratch arena — every
// run; here the first iteration warms the arena and every repeat is
// served from the free lists instead of operator new.  Compare against
// BM_Contour at the same size for the repeat-run speedup.
void BM_ContourArenaReuse(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ContourFilter filter;
  filter.setIsovalues(
      vis::ContourFilter::uniformIsovalues(g.field("energy"), 3));
  util::ExecutionContext ctx;
  for (auto _ : state) {
    ctx.beginRun();
    benchmark::DoNotOptimize(
        filter.run(ctx, g, "energy").surface.numTriangles());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells() * 3);
}
BENCHMARK(BM_ContourArenaReuse)->Arg(16)->Arg(32);

void BM_Threshold(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ThresholdFilter filter;
  filter.setRange(1.2, 2.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.run(g, "energy").kept.numCells());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK(BM_Threshold)->Arg(16)->Arg(32);

void BM_ClipSphere(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ClipSphereFilter filter;
  filter.setSphere(g.bounds().center(), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.run(g, "energy").clipped.cutPieces.numTets());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK(BM_ClipSphere)->Arg(16)->Arg(32);

void BM_Isovolume(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::IsovolumeFilter filter;
  filter.setRange(1.3, 2.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.run(g, "energy").cutPieces.numTets());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK(BM_Isovolume)->Arg(16)->Arg(32);

void BM_Slice(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::SliceFilter filter;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.run(g, "energy").surface.numTriangles());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK(BM_Slice)->Arg(16)->Arg(32);

void BM_ParticleAdvection(benchmark::State& state) {
  const vis::UniformGrid& g = grid(24);
  vis::ParticleAdvectionFilter filter;
  filter.setSeedCount(state.range(0));
  filter.setMaxSteps(200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.run(g, "velocity").totalSteps);
  }
}
BENCHMARK(BM_ParticleAdvection)->Arg(100)->Arg(400);

void BM_ExternalFaces(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vis::extractExternalFaces(g, "energy").facesFound);
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK(BM_ExternalFaces)->Arg(16)->Arg(32);

// Arena-reuse counterpart of BM_ExternalFaces (see BM_ContourArenaReuse).
void BM_ExternalFacesArenaReuse(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  util::ExecutionContext ctx;
  for (auto _ : state) {
    ctx.beginRun();
    benchmark::DoNotOptimize(
        vis::extractExternalFaces(ctx, g, "energy").facesFound);
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK(BM_ExternalFacesArenaReuse)->Arg(16)->Arg(32);

// --- Backend comparison ---------------------------------------------
//
// The same kernel pinned to each execution backend (see DESIGN §11) at
// the study-scale 128³/256³ tiers.  All backends are bit-identical, so
// the delta is pure dispatch + code-path cost: `vectorized` runs the
// filters' SoA row sweeps (auto-vectorized at -O3), `threaded` and
// `serial` run the scalar incremental paths.  Names land in
// BENCH_kernels.json as BM_<Kernel>Backend/<backend>/<size> — the
// per-backend columns the bench table in the README is built from.

void BM_ContourBackend(benchmark::State& state, exec::BackendKind kind) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ContourFilter filter;
  filter.setIsovalues(
      vis::ContourFilter::uniformIsovalues(g.field("energy"), 3));
  util::ExecutionContext ctx;
  ctx.setBackend(exec::backendFor(kind));
  for (auto _ : state) {
    ctx.beginRun();
    benchmark::DoNotOptimize(
        filter.run(ctx, g, "energy").surface.numTriangles());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells() * 3);
}
BENCHMARK_CAPTURE(BM_ContourBackend, serial, exec::BackendKind::Serial)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ContourBackend, threaded, exec::BackendKind::Threaded)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ContourBackend, vectorized,
                  exec::BackendKind::Vectorized)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ThresholdBackend(benchmark::State& state, exec::BackendKind kind) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ThresholdFilter filter;
  filter.setRange(1.2, 2.2);
  util::ExecutionContext ctx;
  ctx.setBackend(exec::backendFor(kind));
  for (auto _ : state) {
    ctx.beginRun();
    benchmark::DoNotOptimize(filter.run(ctx, g, "energy").kept.numCells());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK_CAPTURE(BM_ThresholdBackend, serial, exec::BackendKind::Serial)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThresholdBackend, threaded, exec::BackendKind::Threaded)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ThresholdBackend, vectorized,
                  exec::BackendKind::Vectorized)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ExternalFacesBackend(benchmark::State& state,
                             exec::BackendKind kind) {
  const vis::UniformGrid& g = grid(state.range(0));
  util::ExecutionContext ctx;
  ctx.setBackend(exec::backendFor(kind));
  for (auto _ : state) {
    ctx.beginRun();
    benchmark::DoNotOptimize(
        vis::extractExternalFaces(ctx, g, "energy").facesFound);
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK_CAPTURE(BM_ExternalFacesBackend, serial, exec::BackendKind::Serial)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExternalFacesBackend, threaded,
                  exec::BackendKind::Threaded)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ExternalFacesBackend, vectorized,
                  exec::BackendKind::Vectorized)
    ->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_ClipSphereBackend(benchmark::State& state, exec::BackendKind kind) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ClipSphereFilter filter;
  filter.setSphere(g.bounds().center(), 0.3);
  util::ExecutionContext ctx;
  ctx.setBackend(exec::backendFor(kind));
  for (auto _ : state) {
    ctx.beginRun();
    benchmark::DoNotOptimize(
        filter.run(ctx, g, "energy").clipped.cutPieces.numTets());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells());
}
BENCHMARK_CAPTURE(BM_ClipSphereBackend, serial, exec::BackendKind::Serial)
    ->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ClipSphereBackend, threaded, exec::BackendKind::Threaded)
    ->Arg(128)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ClipSphereBackend, vectorized,
                  exec::BackendKind::Vectorized)
    ->Arg(128)->Unit(benchmark::kMillisecond);

void BM_BvhBuild(benchmark::State& state) {
  const vis::TriangleMesh mesh =
      vis::extractExternalFaces(grid(state.range(0)), "energy").mesh;
  for (auto _ : state) {
    vis::Bvh bvh(mesh);
    benchmark::DoNotOptimize(bvh.nodeCount());
  }
  state.SetItemsProcessed(state.iterations() * mesh.numTriangles());
}
BENCHMARK(BM_BvhBuild)->Arg(16)->Arg(32);

// Ablation: BVH traversal vs brute force — the reason ray tracers carry
// a spatial acceleration structure.
void BM_TraceWithBvh(benchmark::State& state) {
  const vis::UniformGrid& g = grid(16);
  const vis::TriangleMesh mesh =
      vis::extractExternalFaces(g, "energy").mesh;
  const vis::Bvh bvh(mesh);
  const auto cameras = vis::cameraOrbit(g.bounds(), 1);
  std::int64_t hits = 0;
  for (auto _ : state) {
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        hits += bvh.intersect(cameras[0].pixelRay(x, y, 32, 32)).hit();
      }
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_TraceWithBvh);

void BM_TraceBruteForce(benchmark::State& state) {
  const vis::UniformGrid& g = grid(16);
  const vis::TriangleMesh mesh =
      vis::extractExternalFaces(g, "energy").mesh;
  const vis::Bvh bvh(mesh);
  const auto cameras = vis::cameraOrbit(g.bounds(), 1);
  std::int64_t hits = 0;
  for (auto _ : state) {
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        hits += bvh.intersectBruteForce(cameras[0].pixelRay(x, y, 32, 32))
                    .hit();
      }
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * 32 * 32);
}
BENCHMARK(BM_TraceBruteForce);

void BM_VolumeRender(benchmark::State& state) {
  const vis::UniformGrid& g = grid(24);
  vis::VolumeRenderer renderer;
  renderer.setImageSize(64, 64);
  renderer.setCameraCount(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(renderer.run(g, "energy").samplesTaken);
  }
}
BENCHMARK(BM_VolumeRender);

// --- Telemetry cost -------------------------------------------------
//
// BM_HistogramRecord is the raw cost of one Histogram::record(): a
// bucket fetch_add, a sum fetch_add, and a max CAS ratchet, all on the
// caller's shard.  The ->Threads(4) variant checks the sharding claim:
// per-thread shards mean the multi-threaded rate should scale, not
// collapse under contention.
void BM_HistogramRecord(benchmark::State& state) {
  static telemetry::MetricRegistry registry;
  telemetry::Histogram& h =
      registry.histogram("bench_record_probe_ms", {},
                         "record() cost probe (bench-only)");
  double value = 1e-3;
  for (auto _ : state) {
    h.record(value);
    // Walk the buckets so the CAS ratchet is exercised, not skipped.
    value *= 1.5;
    if (value > 1e4) value = 1e-3;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->Threads(1)->Threads(4);

// Telemetry overhead on a real kernel (acceptance: ≤ 2 % on contour
// 128³).  Both variants run the kernel through the same persistent
// ExecutionContext; the "On" variant additionally wraps each run in a
// PhaseScope and records latency into a registry histogram plus a run
// counter — the same instrumentation the service layer applies per
// request.  The delta between the two at the same size is the
// telemetry tax.
void BM_ContourTelemetryIdle(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ContourFilter filter;
  filter.setIsovalues(
      vis::ContourFilter::uniformIsovalues(g.field("energy"), 3));
  util::ExecutionContext ctx;
  for (auto _ : state) {
    ctx.beginRun();
    benchmark::DoNotOptimize(
        filter.run(ctx, g, "energy").surface.numTriangles());
  }
  state.SetItemsProcessed(state.iterations() * g.numCells() * 3);
}
BENCHMARK(BM_ContourTelemetryIdle)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_ContourTelemetryOn(benchmark::State& state) {
  const vis::UniformGrid& g = grid(state.range(0));
  vis::ContourFilter filter;
  filter.setIsovalues(
      vis::ContourFilter::uniformIsovalues(g.field("energy"), 3));
  static telemetry::MetricRegistry registry;
  telemetry::Histogram& latency = registry.histogram(
      "bench_contour_latency_ms", {}, "contour run latency (bench-only)");
  telemetry::Counter& runs =
      registry.counter("bench_contour_runs_total", {}, "contour runs");
  util::ExecutionContext ctx;
  for (auto _ : state) {
    ctx.beginRun();
    const auto start = std::chrono::steady_clock::now();
    {
      auto scope = ctx.phase("bench/contour");
      benchmark::DoNotOptimize(
          filter.run(ctx, g, "energy").surface.numTriangles());
    }
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    latency.record(elapsed.count());
    runs.inc();
  }
  state.SetItemsProcessed(state.iterations() * g.numCells() * 3);
}
BENCHMARK(BM_ContourTelemetryOn)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_CloverLeafStep(benchmark::State& state) {
  sim::CloverLeaf clover(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(clover.step());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_CloverLeafStep)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
