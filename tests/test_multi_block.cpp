// Multi-block golden determinism suite.
//
// The contract under test: every variable-output filter produces
// BIT-IDENTICAL results whether it runs on the global grid or on a
// k-slab decomposition — for every block count, ghost depth, execution
// backend, and pool size.  The reference for every comparison is the
// single-grid run on the serial backend with a one-thread pool, the
// same reference test_kernel_determinism pins the backends against, so
// the two suites compose: any (blocks, ghost, backend, pool) cell
// equals the one canonical output.
//
// Also pinned here: the ghost exchange is functionally load-bearing
// (partition fills only exclusively-owned planes, so skipping the
// exchange is an error, not a slow path), stitchGlobal reproduces the
// partitioned grid bitwise, domain point sampling matches the global
// grid sample bitwise, and core::runAlgorithm surfaces the
// ghost-exchange / block-stitch phases in the profile when blockCount
// asks for a decomposition.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/algorithms.h"
#include "sim/cloverleaf.h"
#include "util/backend.h"
#include "util/exec_context.h"
#include "util/thread_pool.h"
#include "viz/dataset/multi_block.h"
#include "viz/filters/clip_sphere.h"
#include "viz/filters/contour.h"
#include "viz/filters/domain.h"
#include "viz/filters/isovolume.h"
#include "viz/filters/particle_advection.h"
#include "viz/filters/slice.h"
#include "viz/filters/threshold.h"

namespace pviz::vis {
namespace {

template <typename F>
auto withExec(unsigned workers, const exec::Backend& backend, F&& f) {
  util::ThreadPool pool(workers);
  util::ExecutionContext ctx(pool);
  ctx.setBackend(backend);
  return f(ctx);
}

struct ExecConfig {
  unsigned workers;
  const exec::Backend* backend;

  std::string label() const {
    return std::string(backend->token()) + " backend, pool " +
           std::to_string(workers);
  }
};

std::vector<unsigned> poolSizes() {
  return {1u, 2u, std::max(1u, std::thread::hardware_concurrency())};
}

std::vector<ExecConfig> execConfigs() {
  std::vector<ExecConfig> out;
  for (unsigned workers : poolSizes()) {
    for (const exec::Backend* backend :
         {&exec::serialBackend(), &exec::threadedBackend(),
          &exec::vectorizedBackend()}) {
      out.push_back({workers, backend});
    }
  }
  return out;
}

/// Reference runner: serial backend, one-thread pool, single grid.
template <typename F>
auto serialReference(F&& f) {
  return withExec(1, exec::serialBackend(), std::forward<F>(f));
}

/// The decomposition matrix the golden tests sweep.
const vis::Id kBlockCounts[] = {1, 2, 4, 8};
const vis::Id kGhostDepths[] = {1, 2};

std::string domainLabel(Id blocks, Id ghost) {
  return "blocks " + std::to_string(blocks) + ", ghost " +
         std::to_string(ghost);
}

/// Partition + exchange + run `f(ctx, domain)` under one exec config.
template <typename F>
auto withDomain(const ExecConfig& cfg, const UniformGrid& g, Id blocks,
                Id ghost, F&& f) {
  return withExec(cfg.workers, *cfg.backend, [&](util::ExecutionContext& ctx) {
    MultiBlockGrid domain = MultiBlockGrid::partition(g, blocks, ghost);
    domain.exchangeGhosts(ctx);
    return f(ctx, domain);
  });
}

void expectIdentical(const TriangleMesh& a, const TriangleMesh& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_EQ(a.connectivity.size(), b.connectivity.size());
  ASSERT_EQ(a.pointScalars.size(), b.pointScalars.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x);
    EXPECT_EQ(a.points[i].y, b.points[i].y);
    EXPECT_EQ(a.points[i].z, b.points[i].z);
  }
  EXPECT_EQ(a.connectivity, b.connectivity);
  EXPECT_EQ(a.pointScalars, b.pointScalars);
}

void expectIdentical(const TetMesh& a, const TetMesh& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x);
    EXPECT_EQ(a.points[i].y, b.points[i].y);
    EXPECT_EQ(a.points[i].z, b.points[i].z);
  }
  EXPECT_EQ(a.connectivity, b.connectivity);
  EXPECT_EQ(a.pointScalars, b.pointScalars);
}

void expectIdentical(const HexSubset& a, const HexSubset& b) {
  EXPECT_EQ(a.cellIds, b.cellIds);
  EXPECT_EQ(a.cellScalars, b.cellScalars);
}

void expectIdentical(const PolylineSet& a, const PolylineSet& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_EQ(a.offsets, b.offsets);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x);
    EXPECT_EQ(a.points[i].y, b.points[i].y);
    EXPECT_EQ(a.points[i].z, b.points[i].z);
  }
  EXPECT_EQ(a.pointScalars, b.pointScalars);
}

void expectIdenticalGrids(const UniformGrid& a, const UniformGrid& b) {
  ASSERT_EQ(a.pointDims().i, b.pointDims().i);
  ASSERT_EQ(a.pointDims().j, b.pointDims().j);
  ASSERT_EQ(a.pointDims().k, b.pointDims().k);
  ASSERT_EQ(a.fields().size(), b.fields().size());
  for (const auto& [name, field] : a.fields()) {
    ASSERT_TRUE(b.hasField(name)) << name;
    EXPECT_EQ(field.data(), b.field(name).data()) << name;
  }
}

/// A grid with a custom per-point scalar built from a callable.
template <typename F>
UniformGrid fieldGrid(Id3 pointDims, F&& value) {
  UniformGrid g(pointDims, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  Field f = Field::zeros("v", Association::Points, 1, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) {
    f.setScalar(p, value(g.pointPosition(p)));
  }
  g.addField(std::move(f));
  return g;
}

bool hasPhase(const KernelProfile& profile, const std::string& name) {
  for (const WorkProfile& phase : profile.phases) {
    if (phase.name == name) return true;
  }
  return false;
}

// ---- decomposition mechanics -------------------------------------------

TEST(MultiBlock, PartitionTilesTheDomainExclusively) {
  const UniformGrid g = sim::makeCloverField(16);
  const Id ck = g.cellDims().k;
  MultiBlockGrid domain = MultiBlockGrid::partition(g, 4, 1);
  ASSERT_EQ(domain.numBlocks(), 4);

  Id covered = 0;
  for (Id b = 0; b < domain.numBlocks(); ++b) {
    const auto& blk = domain.block(b);
    EXPECT_EQ(blk.globalCellBegin, b * ck / 4);
    EXPECT_GT(blk.ownedCells(), 0);
    covered += blk.ownedCells();
    for (Id k = blk.globalCellBegin; k < blk.globalCellEnd; ++k) {
      EXPECT_EQ(domain.ownerOfCellPlane(k), b);
    }
  }
  EXPECT_EQ(covered, ck);

  // More blocks than cell planes: clamps to one plane per block.
  EXPECT_EQ(MultiBlockGrid::partition(g, 100, 1).numBlocks(), ck);
}

TEST(MultiBlock, GhostExchangeIsLoadBearing) {
  const UniformGrid g = sim::makeCloverField(8);
  // Zero ghost layers would leave every block's top point plane
  // unfilled; partition refuses rather than producing wrong answers.
  EXPECT_THROW(MultiBlockGrid::partition(g, 2, 0), Error);

  // No output path is reachable before the exchange ran.
  MultiBlockGrid domain = MultiBlockGrid::partition(g, 2, 1);
  EXPECT_FALSE(domain.exchanged());
  util::ThreadPool pool(1);
  util::ExecutionContext ctx(pool);
  EXPECT_THROW(domain.stitchGlobal(ctx), Error);
  ContourFilter contour;
  contour.setIsovalues({1.0});
  EXPECT_THROW(runContour(ctx, domain, contour, "energy"), Error);

  domain.exchangeGhosts(ctx);
  EXPECT_TRUE(domain.exchanged());
  EXPECT_GT(domain.lastExchange().bytes, 0.0);
}

TEST(MultiBlock, StitchReproducesTheGlobalGridBitwise) {
  const UniformGrid g = sim::makeCloverField(16);
  for (Id blocks : kBlockCounts) {
    for (Id ghost : kGhostDepths) {
      SCOPED_TRACE(domainLabel(blocks, ghost));
      util::ThreadPool pool(2);
      util::ExecutionContext ctx(pool);
      MultiBlockGrid domain = MultiBlockGrid::partition(g, blocks, ghost);
      domain.exchangeGhosts(ctx);
      const UniformGrid stitched = domain.stitchGlobal(ctx);
      expectIdenticalGrids(stitched, g);
      EXPECT_GT(domain.lastStitch().bytes, 0.0);
    }
  }
}

TEST(MultiBlock, DomainSamplingMatchesTheGlobalGridBitwise) {
  const UniformGrid g = sim::makeCloverField(16);
  util::ThreadPool pool(1);
  util::ExecutionContext ctx(pool);
  MultiBlockGrid domain = MultiBlockGrid::partition(g, 4, 1);
  domain.exchangeGhosts(ctx);

  const Bounds box = g.bounds();
  const Vec3 ext = box.extent();
  const Field& energy = g.field("energy");
  const Field& velocity = g.field("velocity");
  // A deterministic scatter of probes, biased to land on and around the
  // inter-block seams (z at integer cell planes) where block-local
  // arithmetic would diverge if sampling didn't go through the global
  // skeleton.
  for (int i = 0; i < 200; ++i) {
    const double fx = (i * 29 % 97) / 96.0;
    const double fy = (i * 53 % 89) / 88.0;
    double fz = (i * 71 % 101) / 100.0;
    if (i % 3 == 0) fz = (i % 17) / 16.0;  // exactly on a cell plane
    const Vec3 p{box.lo.x + fx * ext.x, box.lo.y + fy * ext.y,
                 box.lo.z + fz * ext.z};
    double gs = 0.0, ds = 0.0;
    ASSERT_EQ(g.sampleScalar(energy, p, gs),
              domain.sampleScalar("energy", p, ds));
    EXPECT_EQ(gs, ds);
    Vec3 gv{}, dv{};
    ASSERT_EQ(g.sampleVector(velocity, p, gv),
              domain.sampleVector("velocity", p, dv));
    EXPECT_EQ(gv.x, dv.x);
    EXPECT_EQ(gv.y, dv.y);
    EXPECT_EQ(gv.z, dv.z);
  }
}

// ---- golden block-count invariance, filter by filter --------------------

TEST(MultiBlockDeterminism, ContourAcrossBlocksGhostsAndConfigs) {
  const UniformGrid g = sim::makeCloverField(16);
  ContourFilter filter;
  filter.setIsovalues(ContourFilter::uniformIsovalues(g.field("energy"), 3));
  const TriangleMesh reference =
      serialReference([&](util::ExecutionContext& ctx) {
        return filter.run(ctx, g, "energy").surface;
      });
  EXPECT_GT(reference.numTriangles(), 0);
  for (Id blocks : kBlockCounts) {
    for (Id ghost : kGhostDepths) {
      for (const ExecConfig& cfg : execConfigs()) {
        SCOPED_TRACE(domainLabel(blocks, ghost) + ", " + cfg.label());
        const auto result =
            withDomain(cfg, g, blocks, ghost,
                       [&](util::ExecutionContext& ctx, MultiBlockGrid& d) {
                         return runContour(ctx, d, filter, "energy");
                       });
        expectIdentical(result.surface, reference);
        Id passSum = 0;
        for (Id n : result.passTriangles) passSum += n;
        EXPECT_EQ(passSum, result.surface.numTriangles());
      }
    }
  }
}

TEST(MultiBlockDeterminism, ThresholdAcrossBlocksGhostsAndConfigs) {
  const UniformGrid g = sim::makeCloverField(16);
  ThresholdFilter filter;
  filter.setRange(1.2, 2.2);
  const HexSubset reference =
      serialReference([&](util::ExecutionContext& ctx) {
        return filter.run(ctx, g, "energy").kept;
      });
  EXPECT_GT(reference.numCells(), 0);
  for (Id blocks : kBlockCounts) {
    for (Id ghost : kGhostDepths) {
      for (const ExecConfig& cfg : execConfigs()) {
        SCOPED_TRACE(domainLabel(blocks, ghost) + ", " + cfg.label());
        expectIdentical(
            withDomain(cfg, g, blocks, ghost,
                       [&](util::ExecutionContext& ctx, MultiBlockGrid& d) {
                         return runThreshold(ctx, d, filter, "energy").kept;
                       }),
            reference);
      }
    }
  }
}

TEST(MultiBlockDeterminism, ClipSphereAcrossBlocksGhostsAndConfigs) {
  const UniformGrid g = sim::makeCloverField(16);
  ClipSphereFilter filter;
  filter.setSphere(g.bounds().center(), 0.3);
  const auto reference = serialReference([&](util::ExecutionContext& ctx) {
    return filter.run(ctx, g, "energy").clipped;
  });
  EXPECT_GT(reference.cellsCut, 0);
  for (Id blocks : kBlockCounts) {
    for (Id ghost : kGhostDepths) {
      for (const ExecConfig& cfg : execConfigs()) {
        SCOPED_TRACE(domainLabel(blocks, ghost) + ", " + cfg.label());
        const auto clipped =
            withDomain(cfg, g, blocks, ghost,
                       [&](util::ExecutionContext& ctx, MultiBlockGrid& d) {
                         return runClipSphere(ctx, d, filter, "energy").clipped;
                       });
        expectIdentical(clipped.wholeCells, reference.wholeCells);
        expectIdentical(clipped.cutPieces, reference.cutPieces);
        EXPECT_EQ(clipped.cellsIn, reference.cellsIn);
        EXPECT_EQ(clipped.cellsOut, reference.cellsOut);
        EXPECT_EQ(clipped.cellsCut, reference.cellsCut);
      }
    }
  }
}

TEST(MultiBlockDeterminism, IsovolumeAcrossBlocksGhostsAndConfigs) {
  const UniformGrid g = sim::makeCloverField(16);
  IsovolumeFilter filter;
  filter.setRange(1.3, 2.1);
  const auto reference = serialReference([&](util::ExecutionContext& ctx) {
    return filter.run(ctx, g, "energy");
  });
  EXPECT_GT(reference.cutPieces.numTets(), 0);
  for (Id blocks : kBlockCounts) {
    for (Id ghost : kGhostDepths) {
      for (const ExecConfig& cfg : execConfigs()) {
        SCOPED_TRACE(domainLabel(blocks, ghost) + ", " + cfg.label());
        const auto result =
            withDomain(cfg, g, blocks, ghost,
                       [&](util::ExecutionContext& ctx, MultiBlockGrid& d) {
                         return runIsovolume(ctx, d, filter, "energy");
                       });
        expectIdentical(result.wholeCells, reference.wholeCells);
        expectIdentical(result.cutPieces, reference.cutPieces);
      }
    }
  }
}

TEST(MultiBlockDeterminism, SliceAcrossBlocksGhostsAndConfigs) {
  const UniformGrid g = sim::makeCloverField(16);
  SliceFilter filter;  // default three axis planes through the center
  const TriangleMesh reference =
      serialReference([&](util::ExecutionContext& ctx) {
        return filter.run(ctx, g, "energy").surface;
      });
  EXPECT_GT(reference.numTriangles(), 0);
  for (Id blocks : kBlockCounts) {
    for (Id ghost : kGhostDepths) {
      for (const ExecConfig& cfg : execConfigs()) {
        SCOPED_TRACE(domainLabel(blocks, ghost) + ", " + cfg.label());
        expectIdentical(
            withDomain(cfg, g, blocks, ghost,
                       [&](util::ExecutionContext& ctx, MultiBlockGrid& d) {
                         return runSlice(ctx, d, filter, "energy").surface;
                       }),
            reference);
      }
    }
  }
}

TEST(MultiBlockDeterminism, AdvectionViaStitchedGrid) {
  const UniformGrid g = sim::makeCloverField(16);
  ParticleAdvectionFilter filter;
  filter.setSeedCount(120);
  filter.setMaxSteps(80);
  filter.setStepLength(0.01);
  const PolylineSet reference =
      serialReference([&](util::ExecutionContext& ctx) {
        return filter.run(ctx, g, "velocity").streamlines;
      });
  EXPECT_GT(reference.numLines(), 0);
  for (Id blocks : {Id{2}, Id{4}, Id{8}}) {
    for (const ExecConfig& cfg : execConfigs()) {
      SCOPED_TRACE(domainLabel(blocks, 1) + ", " + cfg.label());
      expectIdentical(
          withDomain(cfg, g, blocks, 1,
                     [&](util::ExecutionContext& ctx, MultiBlockGrid& d) {
                       return runParticleAdvection(ctx, d, filter, "velocity")
                           .streamlines;
                     }),
          reference);
    }
  }
}

// ---- awkward shapes -----------------------------------------------------

TEST(MultiBlockDeterminism, DegenerateColumnGrid) {
  // A 1×1×64 column of cells: blocks of a single 1×1×1 cell plane, every
  // cell seam is a block seam, and the 8-block case leaves some blocks
  // with ghost windows larger than their owned ranges.
  const UniformGrid g =
      fieldGrid({2, 2, 65}, [](const Vec3& p) { return p.z - 31.5; });
  ContourFilter contour;
  contour.setIsovalues({0.0});
  ThresholdFilter threshold;
  threshold.setRange(-20.0, 20.0);
  const auto reference = serialReference([&](util::ExecutionContext& ctx) {
    return std::make_pair(contour.run(ctx, g, "v").surface,
                          threshold.run(ctx, g, "v").kept);
  });
  EXPECT_GT(reference.first.numTriangles(), 0);
  EXPECT_GT(reference.second.numCells(), 0);
  for (Id blocks : {Id{2}, Id{8}, Id{64}}) {
    for (Id ghost : kGhostDepths) {
      for (const ExecConfig& cfg : execConfigs()) {
        SCOPED_TRACE(domainLabel(blocks, ghost) + ", " + cfg.label());
        const auto result =
            withDomain(cfg, g, blocks, ghost,
                       [&](util::ExecutionContext& ctx, MultiBlockGrid& d) {
                         return std::make_pair(
                             runContour(ctx, d, contour, "v").surface,
                             runThreshold(ctx, d, threshold, "v").kept);
                       });
        expectIdentical(result.first, reference.first);
        expectIdentical(result.second, reference.second);
      }
    }
  }
}

// ---- the algorithm layer ------------------------------------------------

TEST(MultiBlockAlgorithms, RunAlgorithmSurfacesExchangeAndStitchPhases) {
  const UniformGrid g = sim::makeCloverField(16);
  util::ThreadPool pool(2);
  util::ExecutionContext ctx(pool);

  core::AlgorithmParams single;
  single.blockCount = 1;
  const vis::KernelProfile flat =
      core::runAlgorithm(ctx, core::Algorithm::Contour, g, single);
  EXPECT_FALSE(hasPhase(flat, "ghost-exchange"));
  EXPECT_FALSE(hasPhase(flat, "block-stitch"));

  core::AlgorithmParams multi;
  multi.blockCount = 4;
  multi.ghostLayers = 1;
  const vis::KernelProfile blocked =
      core::runAlgorithm(ctx, core::Algorithm::Contour, g, multi);
  EXPECT_TRUE(hasPhase(blocked, "ghost-exchange"));
  EXPECT_TRUE(hasPhase(blocked, "block-stitch"));
  EXPECT_EQ(blocked.elements, g.numCells());
  // Same filter phases in the same order, before the decomposition and
  // framework extras.
  ASSERT_GE(blocked.phases.size(), flat.phases.size());
  for (std::size_t p = 0; p + 1 < flat.phases.size(); ++p) {
    EXPECT_EQ(blocked.phases[p].name, flat.phases[p].name);
  }
}

TEST(MultiBlockAlgorithms, GloballyTraversingAlgorithmsRunOnStitchedGrid) {
  // Advection has no per-block runner; the multi-block path stitches and
  // runs the unchanged kernel, so the profile keeps its phases and gains
  // the stitch + exchange accounting.
  const UniformGrid g = sim::makeCloverField(8);
  util::ThreadPool pool(2);
  util::ExecutionContext ctx(pool);
  core::AlgorithmParams params;
  params.seedCount = 50;
  params.maxSteps = 40;
  params.blockCount = 2;
  const vis::KernelProfile profile =
      core::runAlgorithm(ctx, core::Algorithm::ParticleAdvection, g, params);
  EXPECT_TRUE(hasPhase(profile, "ghost-exchange"));
  EXPECT_TRUE(hasPhase(profile, "block-stitch"));
}

}  // namespace
}  // namespace pviz::vis
