// Ablation: RAPL governor policy — stepwise (slew-limited proportional
// control, hardware-like) vs idealized (exact power-balance solve per
// quantum), across control-quantum lengths.
//
// Shows (a) both converge to the same steady state on long kernels, and
// (b) coarse control quanta inflate short-kernel variance — why the
// study runs several visualization cycles per configuration.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

using namespace pviz;

int main() {
  benchutil::printBanner(
      "Ablation — governor policy and control quantum",
      "measurement methodology behind Tables I-III");

  core::StudyConfig config = benchutil::defaultStudyConfig();
  const vis::Id size = benchutil::envInt("PVIZ_SIZE", 64);
  core::Study study(config);
  const vis::KernelProfile& base =
      study.characterize(core::Algorithm::VolumeRendering, size);

  util::TextTable table;
  table.setHeader({"governor", "quantum(ms)", "cycles", "T(s)", "EffGHz",
                   "avgW", "meterW"});
  for (bool ideal : {false, true}) {
    for (double quantumMs : {1.0, 5.0, 20.0}) {
      for (int cycles : {1, 10}) {
        core::SimulatorOptions options;
        options.idealGovernor = ideal;
        options.governorQuantumSeconds = quantumMs / 1000.0;
        core::ExecutionSimulator simulator(config.machine, options);
        const core::Measurement m = simulator.run(
            core::repeatKernel(base, cycles), 60.0);
        table.addRow({ideal ? "ideal" : "stepwise",
                      util::formatFixed(quantumMs, 0),
                      std::to_string(cycles),
                      util::formatFixed(m.seconds, 3),
                      util::formatFixed(m.effectiveGhz, 2),
                      util::formatFixed(m.averageWatts, 1),
                      util::formatFixed(m.meteredWatts, 1)});
      }
    }
  }
  std::cout << "\nvolume rendering at " << size << "^3 under a 60 W cap\n";
  table.print(std::cout);
  std::cout << "\nexpected: ideal and stepwise agree at 10 cycles; "
               "single-cycle stepwise runs show transient effects that "
               "grow with the control quantum\n";
  return 0;
}
