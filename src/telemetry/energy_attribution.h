// Per-request energy attribution.
//
// The PowerSampler gives each kernel run an exact simulated energy (its
// final timeline sample's cumulative joules).  This module folds those
// run energies back onto the *requests* that caused them, so the serving
// layer can answer the question ROADMAP item 3's governor needs:
// "how many joules does one study request of algorithm X at cap C cost?"
//
// Attribution is conservation-based: every run's joules are credited in
// full to its owning request, so summing the per-algorithm totals over
// any run reproduces the PowerSampler total exactly (the acceptance
// criterion's 1% bound is met with equality up to double rounding).
// Concurrency is reported orthogonally: while two or more attributed
// requests overlap in wall-clock time, the package draw they model is
// shared, so each active request also accrues `overlap` time; the
// portion of a request's joules deposited during shared windows is
// exported as its overlap energy (the split each request's own active
// phases would claim of the combined draw).  Requests are bracketed with
// begin/end; runs recorded between the brackets belong to the request.
//
// Everything here is cold-path (one begin/end per request, one record
// per study cell) and mutex-guarded; the hot kernel loops never touch
// it.  Prometheus instruments are registered on the supplied registry:
//   pviz_request_joules                       histogram, per request
//   pviz_energy_requests_total                counter
//   pviz_algorithm_microjoules_total{algorithm=} counter
//   pviz_cap_microjoules_total{cap=}          counter
//   pviz_energy_overlap_microjoules_total     counter
// (micro-joule integer counters keep the exposition's merge exact.)
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metric_registry.h"

namespace pviz::telemetry {

class EnergyAttributor {
 public:
  explicit EnergyAttributor(MetricRegistry& registry);
  EnergyAttributor(const EnergyAttributor&) = delete;
  EnergyAttributor& operator=(const EnergyAttributor&) = delete;

  /// Open the attribution window for request `token` (the request's
  /// trace id — unique per in-flight request).  `nowUs` overrides the
  /// clock for tests (0 = telemetry::traceNowUs()).
  void beginRequest(std::uint64_t token, const std::string& op,
                    std::uint64_t nowUs = 0);

  /// Credit one kernel run to the open request `token`.  Joules are the
  /// PowerSampler's exact run energy.  Unknown tokens are ignored (the
  /// engine records only for requests the server bracketed).
  void recordRun(std::uint64_t token, const std::string& algorithm,
                 double capWatts, double joules, double seconds);

  struct RequestEnergy {
    double joules = 0.0;         ///< total credited to this request
    double overlapJoules = 0.0;  ///< portion deposited while sharing
    double activeUs = 0.0;       ///< request wall window
    int runs = 0;
  };

  /// Close the window and fold the request into the aggregates (and the
  /// pviz_request_joules histogram, when any run was credited).
  RequestEnergy endRequest(std::uint64_t token, std::uint64_t nowUs = 0);

  struct AlgorithmEnergy {
    double joules = 0.0;
    std::uint64_t runs = 0;
    std::uint64_t requests = 0;  ///< requests that ran this algorithm
    double joulesPerRequest() const {
      return requests > 0 ? joules / static_cast<double>(requests) : 0.0;
    }
  };
  struct CapEnergy {
    double joules = 0.0;
    std::uint64_t runs = 0;
  };
  struct Summary {
    double totalJoules = 0.0;
    double overlapJoules = 0.0;
    std::uint64_t requests = 0;  ///< requests that credited any energy
    std::map<std::string, AlgorithmEnergy> byAlgorithm;
    std::map<double, CapEnergy> byCap;
    double joulesPerRequest() const {
      return requests > 0 ? totalJoules / static_cast<double>(requests) : 0.0;
    }
  };

  /// Aggregates over every completed request (exact double sums of the
  /// same run energies the records report).
  Summary summary() const;

 private:
  struct ActiveRun {
    std::string algorithm;
    double capWatts = 0.0;
    double joules = 0.0;
    std::uint64_t count = 0;
  };
  struct ActiveRequest {
    std::string op;
    std::uint64_t startUs = 0;
    double joules = 0.0;
    double overlapUs = 0.0;
    int runs = 0;
    std::vector<ActiveRun> byRun;  ///< per (algorithm, cap) accumulation
  };

  /// Advance the shared clock to `nowUs`, accruing overlap time on every
  /// active request while two or more are in flight.  Caller holds the
  /// mutex.
  void elapseLocked(std::uint64_t nowUs);

  MetricRegistry& registry_;
  Histogram& requestJoules_;
  Counter& energyRequests_;
  Counter& overlapMicrojoules_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, ActiveRequest> active_;
  std::uint64_t lastEventUs_ = 0;
  Summary totals_;
};

}  // namespace pviz::telemetry
