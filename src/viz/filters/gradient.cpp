#include "viz/filters/gradient.h"

#include "util/exec_context.h"
#include "util/parallel.h"

namespace pviz::vis {

GradientFilter::Result GradientFilter::run(
    const UniformGrid& grid, const std::string& fieldName) const {
  util::ExecutionContext ctx;
  return run(ctx, grid, fieldName);
}

GradientFilter::Result GradientFilter::run(
    util::ExecutionContext& ctx, const UniformGrid& grid,
    const std::string& fieldName) const {
  const Field& field = grid.field(fieldName);
  PVIZ_REQUIRE(field.association() == Association::Points,
               "gradient requires a point field");
  PVIZ_REQUIRE(field.components() == 1, "gradient requires a scalar field");

  const Id3 dims = grid.pointDims();
  const Vec3 h = grid.spacing();
  const std::vector<double>& f = field.data();

  Result result;
  result.gradient = Field::zeros(fieldName + "-gradient",
                                 Association::Points, 3, grid.numPoints());
  std::vector<double>& g = result.gradient.data();

  auto at = [&](Id i, Id j, Id k) {
    return f[static_cast<std::size_t>(grid.pointId({i, j, k}))];
  };
  // One-sided at the boundary, central in the interior.
  auto diff = [&](Id idx, Id extent, double lo, double mid, double hi,
                  double spacing) {
    if (idx == 0) return (hi - mid) / spacing;           // forward
    if (idx == extent - 1) return (mid - lo) / spacing;  // backward
    return (hi - lo) / (2.0 * spacing);                  // central
  };

  auto stencilPhase = ctx.phase("central-differences");
  util::parallelFor(ctx, 0, grid.numPoints(), [&](Id p) {
    const Id3 ijk = grid.pointIjk(p);
    const Id i = ijk.i, j = ijk.j, k = ijk.k;
    const double mid = at(i, j, k);
    const double xm = i > 0 ? at(i - 1, j, k) : mid;
    const double xp = i < dims.i - 1 ? at(i + 1, j, k) : mid;
    const double ym = j > 0 ? at(i, j - 1, k) : mid;
    const double yp = j < dims.j - 1 ? at(i, j + 1, k) : mid;
    const double zm = k > 0 ? at(i, j, k - 1) : mid;
    const double zp = k < dims.k - 1 ? at(i, j, k + 1) : mid;
    const std::size_t base = static_cast<std::size_t>(p) * 3;
    g[base] = diff(i, dims.i, xm, mid, xp, h.x);
    g[base + 1] = diff(j, dims.j, ym, mid, yp, h.y);
    g[base + 2] = diff(k, dims.k, zm, mid, zp, h.z);
  });

  result.profile.kernel = "gradient";
  result.profile.elements = grid.numCells();
  const double points = static_cast<double>(grid.numPoints());
  WorkProfile& stencil = result.profile.addPhase("central-differences");
  stencil.flops = points * 9;
  stencil.intOps = points * 26;
  stencil.memOps = points * 10;
  stencil.bytesStreamed = field.sizeBytes() + points * 24;
  stencil.bytesReused = points * 40;
  stencil.irregularAccesses = points * 1.2;
  stencil.workingSetBytes =
      static_cast<double>(dims.i) * static_cast<double>(dims.j) * 8 * 4;
  stencil.parallelFraction = 0.995;
  stencil.overlap = 0.9;
  return result;
}

Field vectorMagnitude(const Field& vectors, const std::string& outputName) {
  PVIZ_REQUIRE(vectors.components() == 3,
               "vectorMagnitude needs a 3-component field");
  Field out = Field::zeros(outputName, vectors.association(), 1,
                           vectors.count());
  util::parallelFor(0, vectors.count(), [&](Id p) {
    out.setScalar(p, length(vectors.vec3(p)));
  });
  return out;
}

}  // namespace pviz::vis
