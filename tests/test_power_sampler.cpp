// PowerSampler tests: interval emission, interpolation, the trailing
// partial flush, and the timeline the execution simulator attaches to
// every Measurement (the paper-style power-over-time trajectory).
#include <gtest/gtest.h>

#include <cmath>

#include "core/execution_sim.h"
#include "telemetry/power_sampler.h"
#include "util/error.h"

namespace {

using namespace pviz;
using telemetry::PowerSample;
using telemetry::PowerSampler;

TEST(PowerSampler, RejectsNonPositiveInterval) {
  EXPECT_THROW(PowerSampler(0.0), pviz::Error);
  EXPECT_THROW(PowerSampler(-0.1), pviz::Error);
}

TEST(PowerSampler, EmitsOneSamplePerBoundaryCrossed) {
  PowerSampler sampler(0.1);
  sampler.beginPhase("hot");
  // One big step at constant 50 W crossing 10 boundaries exactly.
  sampler.advanceTo(1.0, 50.0);
  const auto timeline = sampler.finish();
  ASSERT_EQ(timeline.size(), 10u);
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const PowerSample& s = timeline[i];
    EXPECT_NEAR(s.timeSeconds, 0.1 * static_cast<double>(i + 1), 1e-12);
    EXPECT_NEAR(s.watts, 50.0, 1e-9);
    EXPECT_NEAR(s.joules, 5.0 * static_cast<double>(i + 1), 1e-9);
    EXPECT_EQ(s.phase, "hot");
  }
}

TEST(PowerSampler, InterpolatesInsideASimulationStep) {
  PowerSampler sampler(0.1);
  // 80 W for 0.05 s, then 40 W for 0.10 s: the first boundary (0.1 s)
  // falls inside the second step, so its energy is interpolated.
  sampler.advanceTo(0.05, 4.0);
  sampler.advanceTo(0.15, 8.0);
  const auto timeline = sampler.finish();
  ASSERT_EQ(timeline.size(), 2u);
  // At 0.1 s: 4 J from the first step + half of the second step's 4 J.
  EXPECT_NEAR(timeline[0].joules, 6.0, 1e-9);
  EXPECT_NEAR(timeline[0].watts, 60.0, 1e-9);
  // finish() flushes the 0.05 s tail: total must be the full 8 J.
  EXPECT_NEAR(timeline[1].timeSeconds, 0.15, 1e-12);
  EXPECT_NEAR(timeline[1].joules, 8.0, 1e-9);
  EXPECT_NEAR(timeline[1].watts, 40.0, 1e-9);
}

TEST(PowerSampler, PhaseTagsFollowBeginPhase) {
  PowerSampler sampler(0.1);
  sampler.beginPhase("a");
  sampler.advanceTo(0.2, 2.0);
  sampler.beginPhase("b");
  sampler.advanceTo(0.4, 4.0);
  const auto timeline = sampler.finish();
  ASSERT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline[0].phase, "a");
  EXPECT_EQ(timeline[1].phase, "a");
  EXPECT_EQ(timeline[2].phase, "b");
  EXPECT_EQ(timeline[3].phase, "b");
}

TEST(PowerSampler, FinishFlushesTrailingPartialInterval) {
  PowerSampler sampler(0.1);
  sampler.advanceTo(0.25, 10.0);
  const auto timeline = sampler.finish();
  ASSERT_EQ(timeline.size(), 3u);  // 0.1, 0.2, and the 0.25 tail
  EXPECT_NEAR(timeline.back().timeSeconds, 0.25, 1e-12);
  EXPECT_NEAR(timeline.back().joules, 10.0, 1e-9);
}

TEST(PowerSampler, ShortRunStillProducesAFinalSample) {
  PowerSampler sampler(0.1);
  sampler.advanceTo(0.03, 1.5);
  const auto timeline = sampler.finish();
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_NEAR(timeline[0].timeSeconds, 0.03, 1e-12);
  EXPECT_NEAR(timeline[0].joules, 1.5, 1e-9);
  EXPECT_NEAR(timeline[0].watts, 50.0, 1e-9);
}

// --- integration with the execution simulator -----------------------

core::ExecutionSimulator makeSim() { return core::ExecutionSimulator(); }

vis::KernelProfile longKernel() {
  vis::KernelProfile k;
  k.kernel = "memory";
  k.elements = 1000000;
  vis::WorkProfile& p = k.addPhase("stream");
  p.flops = 5e8;
  p.intOps = 2e9;
  p.memOps = 2e9;
  p.bytesStreamed = 3e10;
  p.parallelFraction = 0.99;
  p.overlap = 0.9;
  return k;
}

TEST(MeasurementTimeline, SampleCountMatchesRuntimeOverCadence) {
  auto sim = makeSim();
  const core::Measurement m =
      sim.run(core::repeatKernel(longKernel(), 10), 120.0);
  ASSERT_FALSE(m.timeline.empty());
  // One sample per 100 ms plus at most one trailing partial.
  const auto expected =
      static_cast<std::size_t>(std::floor(m.seconds / 0.1));
  EXPECT_GE(m.timeline.size(), expected);
  EXPECT_LE(m.timeline.size(), expected + 1);
  // Timestamps are strictly increasing and end at the total runtime.
  for (std::size_t i = 1; i < m.timeline.size(); ++i) {
    EXPECT_GT(m.timeline[i].timeSeconds, m.timeline[i - 1].timeSeconds);
  }
  EXPECT_NEAR(m.timeline.back().timeSeconds, m.seconds, 1e-9);
}

TEST(MeasurementTimeline, EnergyIntegralMatchesTotal) {
  auto sim = makeSim();
  const core::Measurement m = sim.run(longKernel(), 80.0);
  ASSERT_FALSE(m.timeline.empty());
  // Cumulative joules are non-decreasing and the last sample equals the
  // run's total energy exactly (the finish() flush guarantee).
  double last = 0.0;
  double integrated = 0.0;
  double lastTime = 0.0;
  for (const PowerSample& s : m.timeline) {
    EXPECT_GE(s.joules, last);
    integrated += s.watts * (s.timeSeconds - lastTime);
    last = s.joules;
    lastTime = s.timeSeconds;
  }
  EXPECT_DOUBLE_EQ(m.timeline.back().joules, m.energyJoules);
  // Integrating mean watts over the intervals reproduces the total.
  EXPECT_NEAR(integrated, m.energyJoules,
              std::max(1e-9, m.energyJoules * 1e-6));
}

TEST(MeasurementTimeline, PhaseTagsCoverEveryKernelPhase) {
  auto sim = makeSim();
  vis::KernelProfile kernel = longKernel();
  vis::WorkProfile& second = kernel.addPhase("hot");
  second.flops = 4e10;
  second.intOps = 1.5e10;
  second.memOps = 1e10;
  second.bytesReused = 5e8;
  second.workingSetBytes = 1e6;
  second.parallelFraction = 0.99;
  second.overlap = 0.7;
  const core::Measurement m = sim.run(kernel, 120.0);
  bool sawStream = false;
  bool sawHot = false;
  for (const PowerSample& s : m.timeline) {
    if (s.phase == "stream") sawStream = true;
    if (s.phase == "hot") sawHot = true;
  }
  EXPECT_TRUE(sawStream);
  EXPECT_TRUE(sawHot);
}

TEST(MeasurementTimeline, DeterministicAcrossRuns) {
  auto sim = makeSim();
  const auto kernel = longKernel();
  const core::Measurement a = sim.run(kernel, 70.0);
  const core::Measurement b = sim.run(kernel, 70.0);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline[i].timeSeconds, b.timeline[i].timeSeconds);
    EXPECT_DOUBLE_EQ(a.timeline[i].watts, b.timeline[i].watts);
    EXPECT_DOUBLE_EQ(a.timeline[i].joules, b.timeline[i].joules);
    EXPECT_EQ(a.timeline[i].phase, b.timeline[i].phase);
  }
}

}  // namespace
