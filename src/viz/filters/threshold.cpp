#include "viz/filters/threshold.h"

#include <optional>

#include "util/exec_context.h"
#include "util/parallel.h"

namespace pviz::vis {

ThresholdFilter::Result ThresholdFilter::run(
    const UniformGrid& grid, const std::string& fieldName) const {
  util::ExecutionContext ctx;
  return run(ctx, grid, fieldName);
}

ThresholdFilter::Result ThresholdFilter::run(
    util::ExecutionContext& ctx, const UniformGrid& grid,
    const std::string& fieldName) const {
  const Field& field = grid.field(fieldName);
  PVIZ_REQUIRE(field.components() == 1, "threshold requires a scalar field");
  const Id numCells = grid.numCells();
  const bool pointAssoc = field.association() == Association::Points;
  const std::vector<double>& values = field.data();

  // Pass 1: per-cell value + keep flag, swept as i-rows with incremental
  // index stepping; pass 2 then touches only the kept cells.
  util::ScratchVector<std::uint8_t> keep(ctx.arena(),
                                         static_cast<std::size_t>(numCells));
  util::ScratchVector<double> cellValue(ctx.arena(),
                                        static_cast<std::size_t>(numCells));
  std::optional<util::ExecutionContext::PhaseScope> phase;
  phase.emplace(ctx, "select");
  if (pointAssoc) {
    const Id rows = grid.numCellRows();
    const Id rowLen = grid.cellDims().i;
    const auto corner = grid.cellCornerOffsets();
    const Id rowGrain =
        std::max<Id>(1, util::kDefaultGrain / std::max<Id>(Id{1}, rowLen));
    // Vectorized variant: the eight corner reads become eight unit-stride
    // double streams at fixed offsets into the point field, summed in the
    // same c0..c7 order as the scalar loop (identical FP association →
    // bit-identical averages), and the keep flag is a branch-free
    // compare-and-mask — one fused multiply-free SIMD sweep per row.
    const bool vectorize = ctx.backend().vectorized();
    const double lo = lo_;
    const double hi = hi_;
    util::parallelForChunks(
        ctx, 0, rows,
        [&](Id rowBegin, Id rowEnd) {
          for (Id row = rowBegin; row < rowEnd; ++row) {
            Id cell = row * rowLen;
            Id base = grid.cellRowFirstPointId(row);
            if (vectorize) {
              const double* vals = values.data() + static_cast<std::size_t>(base);
              const double* s0 = vals + corner[0];
              const double* s1 = vals + corner[1];
              const double* s2 = vals + corner[2];
              const double* s3 = vals + corner[3];
              const double* s4 = vals + corner[4];
              const double* s5 = vals + corner[5];
              const double* s6 = vals + corner[6];
              const double* s7 = vals + corner[7];
              double* valueRow = cellValue.data() + static_cast<std::size_t>(cell);
              std::uint8_t* keepRow = keep.data() + static_cast<std::size_t>(cell);
              // Local trip count: the byte stores through keepRow may
              // alias the by-reference capture of rowLen as far as the
              // vectorizer can prove, which blocks the sweep.
              const Id n = rowLen;
              // Two sweeps, not one: mixing the 8-byte value store with
              // the 1-byte flag store defeats the vectorizer at the
              // baseline ISA (no single-width vector covers both), while
              // the pure-double sweep vectorizes cleanly.
              for (Id i = 0; i < n; ++i) {
                // Same left-to-right association (and 0.0 seed) as the
                // scalar loop, so the average is bit-identical even for
                // signed zeros.
                const double sum = ((((((((0.0 + s0[i]) + s1[i]) + s2[i]) +
                                        s3[i]) + s4[i]) + s5[i]) + s6[i]) +
                                    s7[i]);
                valueRow[i] = sum / 8.0;
              }
              for (Id i = 0; i < n; ++i) {
                // `&` (not `&&`): the short-circuit branch would block
                // auto-vectorization where the ISA can narrow to bytes.
                keepRow[i] = static_cast<std::uint8_t>((valueRow[i] >= lo) &
                                                       (valueRow[i] <= hi));
              }
              continue;
            }
            for (Id i = 0; i < rowLen; ++i, ++cell, ++base) {
              double sum = 0.0;
              for (int c = 0; c < 8; ++c) {
                sum += values[static_cast<std::size_t>(base + corner[c])];
              }
              const double v = sum / 8.0;
              cellValue[static_cast<std::size_t>(cell)] = v;
              keep[static_cast<std::size_t>(cell)] =
                  (v >= lo_ && v <= hi_) ? 1 : 0;
            }
          }
        },
        rowGrain);
  } else {
    util::parallelFor(ctx, 0, numCells, [&](Id cell) {
      const double v = values[static_cast<std::size_t>(cell)];
      cellValue[static_cast<std::size_t>(cell)] = v;
      keep[static_cast<std::size_t>(cell)] = (v >= lo_ && v <= hi_) ? 1 : 0;
    });
  }

  // Compacted kept-cell list IS the output id array.
  phase.emplace(ctx, "scan");
  const std::vector<std::int64_t> kept = util::parallelSelect(
      ctx, numCells, [&](std::int64_t cell) {
        return keep[static_cast<std::size_t>(cell)] != 0;
      });
  const auto numKept = static_cast<std::int64_t>(kept.size());

  phase.emplace(ctx, "compact");
  Result result;
  result.kept.cellIds.resize(static_cast<std::size_t>(numKept));
  result.kept.cellScalars.resize(static_cast<std::size_t>(numKept));
  util::parallelFor(ctx, 0, numKept, [&](Id n) {
    const Id cell = kept[static_cast<std::size_t>(n)];
    result.kept.cellIds[static_cast<std::size_t>(n)] = cell;
    result.kept.cellScalars[static_cast<std::size_t>(n)] =
        cellValue[static_cast<std::size_t>(cell)];
  });
  phase.reset();

  // --- Workload characterization: loads/stores dominate (the paper notes
  // threshold's low IPC comes from being dominated by data movement).
  result.profile.kernel = "threshold";
  result.profile.elements = numCells;
  const double cells = static_cast<double>(numCells);
  const double keptCount = static_cast<double>(numKept);

  WorkProfile& select = result.profile.addPhase("select");
  select.flops = cells * (pointAssoc ? 10.0 : 2.0);  // average + compares
  select.intOps = cells * 14;
  select.memOps = cells * (pointAssoc ? 12.0 : 4.0);
  select.bytesStreamed = field.sizeBytes() + cells * (8 + 8);  // field + flag/value
  select.bytesReused = pointAssoc ? cells * 36 : 0.0;
  select.irregularAccesses = pointAssoc ? cells * 3.4 : 0.6 * cells;
  // Sliding plane-window gathers: LLC-resident at any size.
  select.workingSetBytes = static_cast<double>(grid.pointDims().i) *
                           static_cast<double>(grid.pointDims().j) * 8 * 4;
  select.parallelFraction = 0.995;
  select.overlap = 0.92;

  WorkProfile& scan = result.profile.addPhase("scan");
  scan.intOps = cells * 4;
  scan.memOps = cells * 3;
  scan.bytesStreamed = cells * 8 * 2;
  scan.parallelFraction = 0.9;
  scan.overlap = 0.9;

  WorkProfile& compact = result.profile.addPhase("compact");
  compact.intOps = cells * 6 + keptCount * 6;
  compact.memOps = cells * 2 + keptCount * 4;
  compact.bytesStreamed = cells * 8 + keptCount * 16;
  compact.parallelFraction = 0.99;
  compact.overlap = 0.92;

  return result;
}

}  // namespace pviz::vis
