// Volume rendering — per-pixel ray marching with front-to-back
// compositing.
//
// Per the paper: rays step through the volume sampling the scalar field
// at regular intervals; each sample maps through a transfer function to
// a color with transparency and all samples along the ray blend into the
// final pixel.  A visualization cycle renders an image database from
// orbiting cameras (the study used 50).
//
// Volume rendering is the study's archetypal compute-bound algorithm:
// high floating-point density per sample, and a working set (the scalar
// field) that fits in the shared cache at small sizes — which is why its
// measured IPC *falls* as the dataset grows (paper Fig. 5).
#pragma once

#include "util/compat.h"

#include <string>
#include <vector>

#include "viz/dataset/uniform_grid.h"
#include "viz/rendering/color_table.h"
#include "viz/rendering/image.h"
#include "viz/worklet/work_profile.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::vis {

class VolumeRenderer {
 public:
  struct Result {
    std::vector<Image> images;
    std::int64_t raysTraced = 0;
    std::int64_t samplesTaken = 0;
    KernelProfile profile;
  };

  void setImageSize(int width, int height) {
    PVIZ_REQUIRE(width >= 1 && height >= 1, "image size must be positive");
    width_ = width;
    height_ = height;
  }
  void setCameraCount(int count) {
    PVIZ_REQUIRE(count >= 1, "need at least one camera");
    cameraCount_ = count;
  }
  /// Number of sample steps across the volume diagonal.
  void setSamplesAcross(int samples) {
    PVIZ_REQUIRE(samples >= 2, "need at least two samples across");
    samplesAcross_ = samples;
  }
  void setColorTable(ColorTable table) { colors_ = std::move(table); }
  void setKeepFirstImageOnly(bool keep) { keepFirstOnly_ = keep; }

  int width() const { return width_; }
  int height() const { return height_; }
  int cameraCount() const { return cameraCount_; }

  Result run(util::ExecutionContext& ctx, const UniformGrid& grid,
             const std::string& fieldName) const;

  /// Compatibility shim: run on a fresh context over the global pool.
  PVIZ_CONTEXT_SHIM
  Result run(const UniformGrid& grid, const std::string& fieldName) const;

 private:
  int width_ = 512;
  int height_ = 512;
  int cameraCount_ = 50;
  int samplesAcross_ = 256;
  ColorTable colors_ = ColorTable::rainbowVolume();
  bool keepFirstOnly_ = true;
};

}  // namespace pviz::vis
