// Ablation: the roofline overlap factor.
//
// DESIGN.md's timing model is T = max(Tc, Tm) + (1 - overlap) * min(...).
// This bench shows why the overlap term matters: with overlap forced to
// 1 (perfect hiding) the memory-bound class becomes completely
// insensitive to caps (too optimistic); with overlap 0 (no hiding) even
// contour degrades almost proportionally (too pessimistic).  The
// calibrated per-phase values sit between and reproduce the paper.
#include <iostream>

#include "bench_common.h"
#include "core/metrics.h"
#include "util/table.h"

using namespace pviz;

namespace {

vis::KernelProfile withOverlap(const vis::KernelProfile& kernel,
                               double overlap) {
  vis::KernelProfile out = kernel;
  if (overlap >= 0.0) {
    for (auto& phase : out.phases) phase.overlap = overlap;
  }
  return out;
}

}  // namespace

int main() {
  benchutil::printBanner(
      "Ablation — roofline overlap factor",
      "design choice behind the Table I/II timing model");

  core::StudyConfig config = benchutil::defaultStudyConfig();
  const vis::Id size = benchutil::envInt("PVIZ_SIZE", 64);
  core::Study study(config);
  core::ExecutionSimulator simulator(config.machine, config.simulator);

  for (core::Algorithm algorithm :
       {core::Algorithm::Contour, core::Algorithm::VolumeRendering}) {
    const vis::KernelProfile& base = study.characterize(algorithm, size);
    std::cout << '\n'
              << core::algorithmName(algorithm)
              << " — Tratio under each cap, by overlap policy\n";
    util::TextTable table;
    {
      std::vector<std::string> header = {"overlap"};
      for (double cap : config.capsWatts) {
        header.push_back(util::formatFixed(cap, 0) + "W");
      }
      table.setHeader(std::move(header));
    }
    for (double overlap : {-1.0, 0.0, 0.5, 1.0}) {
      const vis::KernelProfile kernel = core::repeatKernel(
          withOverlap(base, overlap), config.cycles);
      core::Measurement baseline;
      std::vector<std::string> row = {
          overlap < 0.0 ? "calibrated" : util::formatFixed(overlap, 1)};
      for (std::size_t c = 0; c < config.capsWatts.size(); ++c) {
        const core::Measurement m =
            simulator.run(kernel, config.capsWatts[c]);
        if (c == 0) baseline = m;
        row.push_back(util::formatRatio(m.seconds / baseline.seconds));
      }
      table.addRow(std::move(row));
    }
    table.print(std::cout);
  }
  return 0;
}
