// Geometry conversion (filter outputs -> renderable triangles).
#include <gtest/gtest.h>

#include "viz/dataset/geometry_conversion.h"
#include "viz/filters/clip_sphere.h"
#include "viz/filters/threshold.h"

namespace pviz::vis {
namespace {

UniformGrid xGrid(Id cells) {
  UniformGrid g = UniformGrid::cube(cells);
  Field f = Field::zeros("x", Association::Points, 1, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) {
    f.setScalar(p, g.pointPosition(p).x);
  }
  g.addField(std::move(f));
  return g;
}

TEST(HexSubsetToTriangles, OneCellGivesTwelveTriangles) {
  const UniformGrid g = xGrid(4);
  HexSubset subset;
  subset.cellIds = {0};
  subset.cellScalars = {7.0};
  const TriangleMesh mesh = hexSubsetToTriangles(g, subset);
  EXPECT_EQ(mesh.numTriangles(), 12);
  EXPECT_EQ(mesh.numPoints(), 24);
  // Surface area of a 0.25-cube: 6 * 0.0625.
  EXPECT_NEAR(mesh.totalArea(), 6.0 * 0.0625, 1e-12);
  for (double s : mesh.pointScalars) ASSERT_EQ(s, 7.0);
}

TEST(HexSubsetToTriangles, FacesWindOutward) {
  const UniformGrid g = xGrid(2);
  HexSubset subset;
  subset.cellIds = {0};
  subset.cellScalars = {0.0};
  const TriangleMesh mesh = hexSubsetToTriangles(g, subset);
  const Vec3 center{0.25, 0.25, 0.25};  // cell 0 of a 2^3 grid on [0,1]
  for (Id t = 0; t < mesh.numTriangles(); ++t) {
    const Vec3& a = mesh.points[static_cast<std::size_t>(
        mesh.connectivity[static_cast<std::size_t>(3 * t)])];
    const Vec3& b = mesh.points[static_cast<std::size_t>(
        mesh.connectivity[static_cast<std::size_t>(3 * t + 1)])];
    const Vec3& c = mesh.points[static_cast<std::size_t>(
        mesh.connectivity[static_cast<std::size_t>(3 * t + 2)])];
    const Vec3 n = cross(b - a, c - a);
    ASSERT_GT(dot(n, (a + b + c) / 3.0 - center), 0.0) << "triangle " << t;
  }
}

TEST(HexSubsetToTriangles, ThresholdOutputRendersDirectly) {
  const UniformGrid g = xGrid(6);
  ThresholdFilter filter;
  filter.setRange(0.0, 0.5);
  const auto kept = filter.run(g, "x").kept;
  const TriangleMesh mesh = hexSubsetToTriangles(g, kept);
  EXPECT_EQ(mesh.numTriangles(), kept.numCells() * 12);
  EXPECT_THROW(hexSubsetToTriangles(g, HexSubset{{0, 1}, {1.0}}), Error);
}

TEST(TetMeshToTriangles, VolumePreservingSurfaceCount) {
  // A unit tet -> 4 triangular faces.
  TetMesh tets;
  tets.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  tets.pointScalars = {1, 2, 3, 4};
  tets.connectivity = {0, 1, 2, 3};
  const TriangleMesh mesh = tetMeshToTriangles(tets);
  EXPECT_EQ(mesh.numTriangles(), 4);
  // Faces: three right triangles of area 1/2 plus sqrt(3)/2.
  EXPECT_NEAR(mesh.totalArea(), 1.5 + std::sqrt(3.0) / 2.0, 1e-12);
  // Scalars carried through.
  double minS = 1e9, maxS = -1e9;
  for (double s : mesh.pointScalars) {
    minS = std::min(minS, s);
    maxS = std::max(maxS, s);
  }
  EXPECT_EQ(minS, 1.0);
  EXPECT_EQ(maxS, 4.0);
}

TEST(TetMeshToTriangles, ClipOutputRenders) {
  const UniformGrid g = xGrid(8);
  ClipSphereFilter filter;
  filter.setSphere(g.bounds().center(), 0.3);
  const auto result = filter.run(g, "x");
  const TriangleMesh mesh = tetMeshToTriangles(result.clipped.cutPieces);
  EXPECT_EQ(mesh.numTriangles(), result.clipped.cutPieces.numTets() * 4);
}

TEST(PolylinesToTriangles, SegmentsBecomeRibbons) {
  PolylineSet lines;
  lines.points = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}};
  lines.pointScalars = {0.0, 0.5, 1.0};
  lines.offsets = {0, 3};
  const TriangleMesh mesh = polylinesToTriangles(lines, 0.05);
  EXPECT_EQ(mesh.numTriangles(), 4);  // 2 segments x 2 triangles
  // Each ribbon quad: length x 0.1 wide.
  EXPECT_NEAR(mesh.totalArea(), 2.0 * 0.1, 1e-12);
  EXPECT_THROW(polylinesToTriangles(lines, 0.0), Error);
}

TEST(PolylinesToTriangles, ZeroLengthSegmentsSkipped) {
  PolylineSet lines;
  lines.points = {{0, 0, 0}, {0, 0, 0}, {1, 0, 0}};
  lines.pointScalars = {0, 0, 0};
  lines.offsets = {0, 3};
  const TriangleMesh mesh = polylinesToTriangles(lines, 0.01);
  EXPECT_EQ(mesh.numTriangles(), 2);  // only the real segment
}

TEST(PolylinesToTriangles, VerticalSegmentsGetAFallbackSide) {
  PolylineSet lines;
  lines.points = {{0, 0, 0}, {0, 0, 1}};  // parallel to the z fallback axis
  lines.pointScalars = {0, 1};
  lines.offsets = {0, 2};
  const TriangleMesh mesh = polylinesToTriangles(lines, 0.02);
  EXPECT_EQ(mesh.numTriangles(), 2);
  EXPECT_NEAR(mesh.totalArea(), 0.04, 1e-12);
}

}  // namespace
}  // namespace pviz::vis
