#include "viz/filters/mc_tables.h"

#include <vector>

#include "util/error.h"

namespace pviz::vis {

namespace {

// Each face lists its four corners cyclically (consecutive corners share
// a cube edge) and the cube-edge index between consecutive corners.
struct Face {
  std::int8_t corners[4];
  std::int8_t edges[4];  // edges[i] connects corners[i] -> corners[i+1 mod 4]
};

constexpr Face kFaces[6] = {
    {{0, 1, 2, 3}, {0, 1, 2, 3}},    // bottom (k = 0)
    {{4, 5, 6, 7}, {4, 5, 6, 7}},    // top (k = 1)
    {{0, 1, 5, 4}, {0, 9, 4, 8}},    // front (j = 0)
    {{1, 2, 6, 5}, {1, 10, 5, 9}},   // right (i = 1)
    {{2, 3, 7, 6}, {2, 11, 6, 10}},  // back (j = 1)
    {{3, 0, 4, 7}, {3, 8, 7, 11}},   // left (i = 0)
};

// For one case, append each face's isoline segments as pairs of cut
// cube-edge indices.  The pairing depends only on the face's own corner
// states, so adjacent cells always agree.
void faceSegments(int caseIndex, const Face& face,
                  std::vector<std::pair<int, int>>& segments) {
  bool inside[4];
  for (int c = 0; c < 4; ++c) {
    inside[c] = (caseIndex >> face.corners[c]) & 1;
  }
  int cut[4];
  int numCut = 0;
  for (int e = 0; e < 4; ++e) {
    if (inside[e] != inside[(e + 1) % 4]) cut[numCut++] = e;
  }
  if (numCut == 0) return;
  PVIZ_ASSERT(numCut == 2 || numCut == 4);
  if (numCut == 2) {
    segments.emplace_back(face.edges[cut[0]], face.edges[cut[1]]);
    return;
  }
  // Ambiguous face: two inside corners on a diagonal.  Separate them:
  // each segment cuts off one inside corner, pairing that corner's two
  // adjacent face edges.
  for (int c = 0; c < 4; ++c) {
    if (!inside[c]) continue;
    const int prevEdge = (c + 3) % 4;  // edge arriving at corner c
    const int nextEdge = c;            // edge leaving corner c
    segments.emplace_back(face.edges[prevEdge], face.edges[nextEdge]);
  }
}

}  // namespace

const McTables& McTables::instance() {
  static const McTables tables = [] {
    McTables t{};
    for (int caseIndex = 0; caseIndex < 256; ++caseIndex) {
      // 1. Which cube edges are cut?
      std::uint16_t mask = 0;
      for (int e = 0; e < 12; ++e) {
        const bool a = (caseIndex >> kEdgeCorners[e][0]) & 1;
        const bool b = (caseIndex >> kEdgeCorners[e][1]) & 1;
        if (a != b) mask |= static_cast<std::uint16_t>(1u << e);
      }
      t.edgeMask[static_cast<std::size_t>(caseIndex)] = mask;

      // 2. Gather the isoline segments each face contributes.
      std::vector<std::pair<int, int>> segments;
      for (const Face& face : kFaces) {
        faceSegments(caseIndex, face, segments);
      }

      // 3. Each cut edge appears in exactly two segments (one per
      //    incident face), so the segments form disjoint closed cycles:
      //    the isosurface polygons.
      int partner[12][2];
      int degree[12] = {};
      for (const auto& [a, b] : segments) {
        PVIZ_ASSERT(degree[a] < 2 && degree[b] < 2);
        partner[a][degree[a]++] = b;
        partner[b][degree[b]++] = a;
      }
      for (int e = 0; e < 12; ++e) {
        PVIZ_ASSERT(degree[e] == 0 || degree[e] == 2);
        PVIZ_ASSERT((degree[e] == 2) == (((mask >> e) & 1) != 0));
      }

      // 4. Trace cycles and fan-triangulate each polygon.
      auto& tri = t.triangles[static_cast<std::size_t>(caseIndex)];
      tri.fill(-1);
      int writeAt = 0;
      int triCount = 0;
      bool visited[12] = {};
      for (int start = 0; start < 12; ++start) {
        if (degree[start] != 2 || visited[start]) continue;
        std::vector<int> polygon;
        int prev = -1;
        int cur = start;
        do {
          visited[cur] = true;
          polygon.push_back(cur);
          const int next = partner[cur][0] == prev ? partner[cur][1]
                                                   : partner[cur][0];
          prev = cur;
          cur = next;
        } while (cur != start);
        PVIZ_ASSERT(polygon.size() >= 3);
        for (std::size_t v = 1; v + 1 < polygon.size(); ++v) {
          PVIZ_ASSERT(writeAt + 3 < kMaxEntries);
          tri[static_cast<std::size_t>(writeAt++)] =
              static_cast<std::int8_t>(polygon[0]);
          tri[static_cast<std::size_t>(writeAt++)] =
              static_cast<std::int8_t>(polygon[v]);
          tri[static_cast<std::size_t>(writeAt++)] =
              static_cast<std::int8_t>(polygon[v + 1]);
          ++triCount;
        }
      }
      t.triangleCount[static_cast<std::size_t>(caseIndex)] =
          static_cast<std::uint8_t>(triCount);
    }
    return t;
  }();
  return tables;
}

}  // namespace pviz::vis
