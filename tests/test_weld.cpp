// Point welding tests.
#include <gtest/gtest.h>

#include "viz/dataset/weld.h"
#include "viz/filters/contour.h"

namespace pviz::vis {
namespace {

TriangleMesh twoTrianglesSharingAnEdge() {
  // Soup form: six vertices, of which two pairs coincide.
  TriangleMesh soup;
  soup.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                 {1, 0, 0}, {1, 1, 0}, {0, 1, 0}};
  soup.pointScalars = {1, 2, 3, 2, 4, 3};
  soup.connectivity = {0, 1, 2, 3, 4, 5};
  return soup;
}

TEST(Weld, MergesCoincidentVertices) {
  const WeldResult result = weldPoints(twoTrianglesSharingAnEdge());
  EXPECT_EQ(result.inputPoints, 6);
  EXPECT_EQ(result.weldedPoints, 4);
  EXPECT_EQ(result.mesh.numTriangles(), 2);
  EXPECT_NEAR(result.compressionRatio(), 1.5, 1e-12);
  // Geometry unchanged.
  EXPECT_NEAR(result.mesh.totalArea(), 1.0, 1e-12);
}

TEST(Weld, ScalarsFollowFirstOccurrence) {
  const WeldResult result = weldPoints(twoTrianglesSharingAnEdge());
  ASSERT_EQ(result.mesh.pointScalars.size(), 4u);
  // Vertices (1,0,0) and (0,1,0) keep their first scalars (2 and 3).
  for (Id p = 0; p < result.mesh.numPoints(); ++p) {
    const Vec3& pos = result.mesh.points[static_cast<std::size_t>(p)];
    const double s = result.mesh.pointScalars[static_cast<std::size_t>(p)];
    if (pos == Vec3{1, 0, 0}) EXPECT_EQ(s, 2.0);
    if (pos == Vec3{0, 1, 0}) EXPECT_EQ(s, 3.0);
  }
}

TEST(Weld, ToleranceControlsMerging) {
  TriangleMesh soup;
  soup.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                 {0, 0, 1e-4}, {1, 0, 1e-4}, {0, 1, 1e-4}};
  soup.pointScalars = {0, 0, 0, 0, 0, 0};
  soup.connectivity = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(weldPoints(soup, 1e-6).weldedPoints, 6);  // kept apart
  EXPECT_EQ(weldPoints(soup, 1e-2).weldedPoints, 3);  // merged
  EXPECT_THROW(weldPoints(soup, 0.0), Error);
}

TEST(Weld, EmptyMeshIsFine) {
  const WeldResult result = weldPoints(TriangleMesh{});
  EXPECT_EQ(result.weldedPoints, 0);
  EXPECT_EQ(result.mesh.numTriangles(), 0);
}

TEST(Weld, ContourSoupCompressesAboutFourToSix) {
  // Each marching-cubes vertex is shared by ~4-6 triangles, so welding
  // a contour soup should compress substantially.
  UniformGrid g = UniformGrid::cube(20);
  Field f = Field::zeros("d", Association::Points, 1, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) {
    f.setScalar(p, length(g.pointPosition(p) - Vec3{0.5, 0.5, 0.5}));
  }
  g.addField(std::move(f));
  ContourFilter contour;
  contour.setIsovalues({0.3});
  const auto surface = contour.run(g, "d").surface;
  const WeldResult welded = weldPoints(surface, 1e-7);
  EXPECT_GT(welded.compressionRatio(), 3.0);
  EXPECT_LT(welded.compressionRatio(), 8.0);
  EXPECT_NEAR(welded.mesh.totalArea(), surface.totalArea(), 1e-9);
}

TEST(Weld, WeldedSphereContourIsClosed) {
  UniformGrid g = UniformGrid::cube(16);
  Field f = Field::zeros("d", Association::Points, 1, g.numPoints());
  for (Id p = 0; p < g.numPoints(); ++p) {
    f.setScalar(p, length(g.pointPosition(p) - Vec3{0.5, 0.5, 0.5}));
  }
  g.addField(std::move(f));
  ContourFilter contour;
  contour.setIsovalues({0.32});
  const auto surface = contour.run(g, "d").surface;
  const WeldResult welded = weldPoints(surface, 1e-7);
  EXPECT_EQ(countBoundaryEdges(welded.mesh), 0);
}

TEST(CountBoundaryEdges, OpenMeshReportsItsRim) {
  TriangleMesh mesh;
  mesh.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  mesh.connectivity = {0, 1, 2};
  EXPECT_EQ(countBoundaryEdges(mesh), 3);
}

}  // namespace
}  // namespace pviz::vis
