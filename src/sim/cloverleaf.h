// CloverLeaf-like 3-D compressible hydrodynamics proxy.
//
// The paper drives its visualization algorithms in situ from CloverLeaf,
// a Lagrangian-Eulerian hydrodynamics proxy app, visualizing the energy
// field (Fig. 1 shows the energy at the 200th time step).  This module
// implements a compact explicit hydro scheme with the same structure:
//
//   * cell-centered density and specific internal energy,
//   * node-centered velocity,
//   * ideal-gas EOS (p = (gamma-1) rho e) with artificial viscosity,
//   * a Lagrangian phase (acceleration + PdV work) followed by a
//     donor-cell Eulerian advection (remap) phase,
//   * the standard CloverLeaf two-state initial condition: a dense
//     high-energy region in one corner expanding into a light ambient
//     gas.
//
// Like the visualization filters, every step produces a KernelProfile;
// a hydro step is the archetypal compute-bound, high-power HPC workload
// the study's power advisor trades off against visualization.
#pragma once

#include <cstdint>

#include "viz/dataset/uniform_grid.h"
#include "viz/worklet/work_profile.h"

namespace pviz::sim {

struct CloverConfig {
  double gamma = 1.4;           ///< ideal gas ratio of specific heats
  double cfl = 0.5;             ///< CFL safety factor
  double viscosity = 0.1;       ///< artificial viscosity coefficient
  double ambientDensity = 0.2;
  double ambientEnergy = 1.0;
  double blastDensity = 1.0;
  double blastEnergy = 2.5;
  double blastExtent = 0.25;    ///< corner box size as a domain fraction
};

class CloverLeaf {
 public:
  explicit CloverLeaf(vis::Id cellsPerAxis, CloverConfig config = {});

  /// Advance one time step; returns the dt taken.
  double step();

  /// Advance `n` steps.
  void run(int n) {
    for (int i = 0; i < n; ++i) step();
  }

  int stepCount() const { return steps_; }
  double time() const { return time_; }
  vis::Id cellsPerAxis() const { return cellsPerAxis_; }

  // Conserved quantities for validation.
  double totalMass() const;
  double totalEnergy() const;  ///< internal + kinetic
  double minDensity() const;

  /// Build a visualization dataset: point fields "energy" (scalar,
  /// cell-to-point averaged) and "velocity" (the node velocities).
  vis::UniformGrid exportForViz() const;

  /// Workload profile of the hydro kernels executed since the last call
  /// (the in situ pipeline alternates simulation and visualization and
  /// charges each side its own power/time).
  vis::KernelProfile takeProfile();

  // Direct state access for tests.
  const std::vector<double>& density() const { return density_; }
  const std::vector<double>& energy() const { return energy_; }

 private:
  void equationOfState();
  double computeDt() const;
  void accelerate(double dt);
  void pdvAndViscosity(double dt);
  void advect(double dt);

  vis::Id cellsPerAxis_;
  vis::Id3 cellDims_;
  vis::Id3 pointDims_;
  double h_;  ///< grid spacing
  CloverConfig config_;

  // Cell-centered.
  std::vector<double> density_;
  std::vector<double> energy_;
  std::vector<double> pressure_;
  std::vector<double> soundspeed_;
  // Node-centered velocity components.
  std::vector<double> velX_, velY_, velZ_;
  // Scratch for advection.
  std::vector<double> scratchA_, scratchB_;

  int steps_ = 0;
  double time_ = 0.0;
  vis::KernelProfile profile_;

  vis::Id cellId(vis::Id i, vis::Id j, vis::Id k) const {
    return i + cellDims_.i * (j + cellDims_.j * k);
  }
  vis::Id nodeId(vis::Id i, vis::Id j, vis::Id k) const {
    return i + pointDims_.i * (j + pointDims_.j * k);
  }
};

/// Fast analytic stand-in for an evolved CloverLeaf energy field: an
/// expanding corner blast with a smooth front and a radial outflow
/// velocity.  Used where time-stepping the proxy would be wasteful
/// (large benchmark grids); `front` positions the blast front as a
/// fraction of the domain diagonal.
vis::UniformGrid makeCloverField(vis::Id cellsPerAxis, double front = 0.55);

}  // namespace pviz::sim
