// powerviz_study — command-line driver for the full study.
//
//   powerviz_study --phase 3 --csv results.csv
//   powerviz_study --algorithms contour,slice --sizes 32,64 --caps 120,80,40
//
// Runs the requested slice of the (cap x algorithm x size) matrix,
// prints a paper-style summary, and optionally exports every record as
// CSV for plotting.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "core/report.h"
#include "core/study.h"
#include "telemetry/trace_sink.h"
#include "util/backend.h"
#include "util/exec_context.h"
#include "util/fileio.h"
#include "util/log.h"
#include "viz/filters/particle_advection.h"
#include "util/options.h"
#include "util/table.h"

namespace {

using namespace pviz;

[[noreturn]] void usage(int exitCode) {
  std::cout <<
      R"(powerviz_study — reproduce the IPDPS'19 power/performance study

options:
  --phase N             run the paper's phase 1, 2 or 3 (overrides
                        --algorithms/--sizes)
  --algorithms a,b,...  subset by name: contour threshold clip isovolume
                        slice advection raytracing volume (default: all)
  --sizes n,n,...       cells per axis (default: 32,64,128,256)
  --caps w,w,...        power caps in watts, default first
                        (default: 120..40 step 10)
  --cycles N            visualization cycles per configuration (default 10)
  --full-render         trace all 50 cameras instead of sampling 8
  --csv PATH            write every record as CSV
  --trace PATH          write the per-phase execution trace (wall time,
                        arena occupancy, pool concurrency) as JSON
  --trace-chrome PATH   write the same phases as Chrome trace-event JSON
                        (open in Perfetto or chrome://tracing)
  --power-timeline PATH write every record's 100 ms power/energy timeline
                        (watts, cumulative joules, phase) as JSON
  --cache PATH          characterization cache file (default: the
                        POWERVIZ_PROFILE_CACHE env var, else
                        pviz_profile_cache.txt; "none" disables)
  --backend NAME        execution backend: serial | threaded | vectorized
                        (default: POWERVIZ_BACKEND, else threaded; all
                        backends produce bit-identical results)
  --advect-seeds N      advection particle count, 1..50000000
                        (default 1000)
  --advect-steps N      advection max integration steps, 1..10000000
                        (default 1000)
  --advect-mode M       streamline | pathline
  --advect-schedule S   worksteal | static (bit-identical output)
  --blocks N            multi-block k-slab count, 1..4096 (default:
                        POWERVIZ_BLOCKS, else 1).  Outputs are
                        bit-identical for every block count; the profile
                        gains ghost-exchange / block-stitch phases.
  --ghost N             ghost cell layers per block side, 1..8 (default:
                        POWERVIZ_GHOST, else 1)
  --quiet               suppress progress logging
                        (PVIZ_LOG=debug|info|warn|error|off overrides)
  -h, --help            this text
)";
  std::exit(exitCode);
}

// Range-checked integer flag: rejects typos (zero, negatives, absurd
// magnitudes) at parse time with the offending flag named, before any
// dataset is generated.
std::int64_t parseBounded(const std::string& value, const char* flag,
                          std::int64_t lo, std::int64_t hi) {
  const std::int64_t parsed = util::parseInt(value, flag);
  if (parsed < lo || parsed > hi) {
    std::cerr << flag << " must be in [" << lo << ", " << hi << "], got "
              << parsed << '\n';
    std::exit(2);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  core::StudyConfig config;
  config.params.cameraCount = 50;
  config.params.sampledCameraCount = 8;
  config.params.imageWidth = 512;
  config.params.imageHeight = 512;
  // POWERVIZ_PROFILE_CACHE moves the on-disk cache out of the CWD (CI
  // keeps it in the build tree; --cache still wins over the env var).
  const char* cacheEnv = std::getenv("POWERVIZ_PROFILE_CACHE");
  config.cachePath = cacheEnv != nullptr ? cacheEnv : "pviz_profile_cache.txt";
  util::setDefaultLogLevel(util::LogLevel::Info);

  std::vector<core::Algorithm> algorithms = core::allAlgorithms();
  int phase = 0;
  std::string csvPath;
  std::string backendToken;
  std::string tracePath;
  std::string traceChromePath;
  std::string powerTimelinePath;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "-h" || arg == "--help") usage(0);
      else if (arg == "--phase") phase = static_cast<int>(util::parseInt(next(), "--phase"));
      else if (arg == "--cycles") config.cycles = static_cast<int>(util::parseInt(next(), "--cycles"));
      else if (arg == "--full-render") config.params.sampledCameraCount = 0;
      else if (arg == "--csv") csvPath = next();
      else if (arg == "--backend") {
        backendToken = next();
        exec::parseBackendToken(backendToken);  // reject bad names up front
      }
      else if (arg == "--trace") tracePath = next();
      else if (arg == "--trace-chrome") traceChromePath = next();
      else if (arg == "--power-timeline") powerTimelinePath = next();
      else if (arg == "--quiet") util::setLogLevel(util::LogLevel::Warn);
      else if (arg == "--cache") {
        const std::string path = next();
        config.cachePath = path == "none" ? "" : path;
      } else if (arg == "--sizes") {
        config.sizes.clear();
        for (std::int64_t size : util::parseSizeList(next())) {
          config.sizes.push_back(size);
        }
      } else if (arg == "--caps") {
        config.capsWatts = util::parseCapList(next());
      } else if (arg == "--algorithms") {
        algorithms = core::parseAlgorithmList(next());
      } else if (arg == "--advect-seeds") {
        config.params.seedCount =
            parseBounded(next(), "--advect-seeds", 1, 50000000);
      } else if (arg == "--advect-steps") {
        config.params.maxSteps =
            parseBounded(next(), "--advect-steps", 1, 10000000);
      } else if (arg == "--blocks") {
        config.params.blockCount = parseBounded(next(), "--blocks", 1, 4096);
      } else if (arg == "--ghost") {
        config.params.ghostLayers = parseBounded(next(), "--ghost", 1, 8);
      } else if (arg == "--advect-mode") {
        config.params.advectionMode = next();
        vis::ParticleAdvectionFilter::parseMode(config.params.advectionMode);
      } else if (arg == "--advect-schedule") {
        config.params.advectionSchedule = next();
        vis::ParticleAdvectionFilter::parseSchedule(
            config.params.advectionSchedule);
      } else {
        std::cerr << "unknown option '" << arg << "'\n";
        usage(2);
      }
    }
  } catch (const pviz::Error& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  if (phase == 1) {
    algorithms = {core::Algorithm::Contour};
    config.sizes = {128};
  } else if (phase == 2) {
    algorithms = core::allAlgorithms();
    config.sizes = {128};
  } else if (phase == 3) {
    algorithms = core::allAlgorithms();
    config.sizes = {32, 64, 128, 256};
  } else if (phase != 0) {
    std::cerr << "phase must be 1, 2 or 3\n";
    return 2;
  }

  core::Study study(config);
  // One context for the whole run: every characterization shares the
  // thread pool and scratch arena, so later sweeps reuse the buffers the
  // first one allocated; the tracer accumulates every kernel phase.
  util::ExecutionContext ctx;
  if (!backendToken.empty()) {
    ctx.setBackend(exec::backendFor(exec::parseBackendToken(backendToken)));
  }
  std::vector<core::ConfigRecord> records;
  for (vis::Id size : config.sizes) {
    for (core::Algorithm algorithm : algorithms) {
      auto sweep = study.capSweep(ctx, algorithm, size);
      records.insert(records.end(), sweep.begin(), sweep.end());
    }
  }

  // Summary: one row per (algorithm, size) with the slowdown knee.
  util::TextTable table;
  table.setHeader({"Algorithm", "Size", "Draw(W)", "IPC", "Knee(W)",
                   "Tratio@min"});
  for (std::size_t r = 0; r < records.size();
       r += config.capsWatts.size()) {
    std::vector<double> tratios;
    for (std::size_t c = 0; c < config.capsWatts.size(); ++c) {
      tratios.push_back(records[r + c].ratios.tRatio);
    }
    const int knee = core::firstSlowdownIndex(tratios);
    const auto& first = records[r];
    table.addRow(
        {core::algorithmName(first.algorithm), std::to_string(first.size),
         util::formatFixed(first.measurement.averageWatts, 1),
         util::formatFixed(first.measurement.ipc, 2),
         knee >= 0 ? util::formatFixed(config.capsWatts[static_cast<std::size_t>(knee)], 0)
                   : std::string("none"),
         util::formatRatio(tratios.back())});
  }
  table.print(std::cout);
  std::cout << records.size() << " configurations evaluated\n";

  if (!csvPath.empty()) {
    std::ofstream out(csvPath);
    if (!out.good()) {
      std::cerr << "cannot write " << csvPath << '\n';
      return 1;
    }
    core::writeStudyCsv(records, out);
    std::cout << "wrote " << csvPath << '\n';
  }

  // Trace and timeline exports are atomic (temp file + rename, the
  // profile-cache pattern): a failed write leaves the old file intact
  // instead of a silently truncated one, and exits non-zero.
  try {
    if (!tracePath.empty()) {
      util::atomicWriteFile(tracePath, ctx.tracer().toJson() + "\n");
      std::cout << "wrote " << tracePath << '\n';
    }
    if (!traceChromePath.empty()) {
      telemetry::TraceSink sink;
      sink.addPhases(ctx.tracer(), /*traceId=*/1);
      util::atomicWriteFile(traceChromePath, sink.toChromeJson() + "\n");
      std::cout << "wrote " << traceChromePath << " (" << sink.size()
                << " spans)\n";
    }
    if (!powerTimelinePath.empty()) {
      util::atomicWriteFile(powerTimelinePath,
                            core::powerTimelineJson(records) + "\n");
      std::cout << "wrote " << powerTimelinePath << '\n';
    }
  } catch (const pviz::Error& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }
  return 0;
}
