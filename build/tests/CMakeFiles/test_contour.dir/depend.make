# Empty dependencies file for test_contour.
# This may be replaced when dependencies are built.
