// Marching-cubes table invariants — the tables are generated, so these
// tests pin down the contract every generated case must satisfy.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "viz/filters/mc_tables.h"

namespace pviz::vis {
namespace {

const McTables& tables() { return McTables::instance(); }

TEST(McTables, TrivialCasesAreEmpty) {
  EXPECT_EQ(tables().triangleCount[0], 0);
  EXPECT_EQ(tables().triangleCount[255], 0);
  EXPECT_EQ(tables().edgeMask[0], 0);
  EXPECT_EQ(tables().edgeMask[255], 0);
}

TEST(McTables, SingleCornerCasesGiveOneTriangle) {
  for (int corner = 0; corner < 8; ++corner) {
    const int caseIndex = 1 << corner;
    EXPECT_EQ(tables().triangleCount[static_cast<std::size_t>(caseIndex)], 1)
        << "corner " << corner;
    // And exactly three cut edges.
    int cut = 0;
    for (int e = 0; e < 12; ++e) {
      if ((tables().edgeMask[static_cast<std::size_t>(caseIndex)] >> e) & 1) {
        ++cut;
      }
    }
    EXPECT_EQ(cut, 3);
  }
}

TEST(McTables, EdgeMaskMatchesCornerStates) {
  for (int caseIndex = 0; caseIndex < 256; ++caseIndex) {
    for (int e = 0; e < 12; ++e) {
      const bool a = (caseIndex >> McTables::kEdgeCorners[e][0]) & 1;
      const bool b = (caseIndex >> McTables::kEdgeCorners[e][1]) & 1;
      const bool cut =
          (tables().edgeMask[static_cast<std::size_t>(caseIndex)] >> e) & 1;
      ASSERT_EQ(cut, a != b) << "case " << caseIndex << " edge " << e;
    }
  }
}

TEST(McTables, TrianglesUseOnlyCutEdges) {
  for (int caseIndex = 0; caseIndex < 256; ++caseIndex) {
    const auto& tri = tables().triangles[static_cast<std::size_t>(caseIndex)];
    const int n = tables().triangleCount[static_cast<std::size_t>(caseIndex)];
    for (int k = 0; k < 3 * n; ++k) {
      const int edge = tri[static_cast<std::size_t>(k)];
      ASSERT_GE(edge, 0);
      ASSERT_LT(edge, 12);
      ASSERT_TRUE(
          (tables().edgeMask[static_cast<std::size_t>(caseIndex)] >> edge) & 1)
          << "case " << caseIndex;
    }
    // Terminated right after the last triangle.
    ASSERT_EQ(tri[static_cast<std::size_t>(3 * n)], -1);
  }
}

TEST(McTables, EveryCutEdgeAppearsInSomeTriangle) {
  for (int caseIndex = 1; caseIndex < 255; ++caseIndex) {
    const auto& tri = tables().triangles[static_cast<std::size_t>(caseIndex)];
    const int n = tables().triangleCount[static_cast<std::size_t>(caseIndex)];
    std::set<int> used;
    for (int k = 0; k < 3 * n; ++k) used.insert(tri[static_cast<std::size_t>(k)]);
    for (int e = 0; e < 12; ++e) {
      if ((tables().edgeMask[static_cast<std::size_t>(caseIndex)] >> e) & 1) {
        ASSERT_TRUE(used.count(e)) << "case " << caseIndex << " edge " << e;
      }
    }
  }
}

TEST(McTables, ComplementaryCasesShareTheCutEdgeSet) {
  // Inverting inside/outside leaves the cut-edge set unchanged.  The
  // triangle *count* may legitimately differ: the ambiguity rule
  // (separate the inside corners) resolves an ambiguous face the other
  // way for the complement, producing e.g. two triangles vs a hexagon.
  // That asymmetry is fine — watertightness across cells only needs
  // both cells of a shared face to see the SAME corner states, which
  // they always do.
  for (int caseIndex = 0; caseIndex < 256; ++caseIndex) {
    const int complement = (~caseIndex) & 0xFF;
    EXPECT_EQ(tables().edgeMask[static_cast<std::size_t>(caseIndex)],
              tables().edgeMask[static_cast<std::size_t>(complement)]);
    if (caseIndex != 0 && caseIndex != 255) {
      EXPECT_GE(tables().triangleCount[static_cast<std::size_t>(caseIndex)],
                1);
    }
  }
}

TEST(McTables, TriangleCountsAreBounded) {
  int maxTris = 0;
  for (int caseIndex = 0; caseIndex < 256; ++caseIndex) {
    maxTris = std::max(
        maxTris,
        static_cast<int>(tables().triangleCount[static_cast<std::size_t>(caseIndex)]));
  }
  EXPECT_GT(maxTris, 3);   // the complex cases exist
  EXPECT_LE(maxTris, 16);  // fits the table storage
}

// The isosurface polygons within a cell are closed cycles: every cut
// edge is used by exactly 1 or 2 triangles, and the triangle fan edges
// internal to a polygon pair up.  A simpler equivalent check: in the
// triangle soup of one case, boundary edges (edge-vertex pairs used
// once) must form closed loops — every vertex has even boundary degree.
TEST(McTables, PolygonFansAreClosed) {
  for (int caseIndex = 1; caseIndex < 255; ++caseIndex) {
    const auto& tri = tables().triangles[static_cast<std::size_t>(caseIndex)];
    const int n = tables().triangleCount[static_cast<std::size_t>(caseIndex)];
    std::map<std::pair<int, int>, int> edgeUse;
    for (int t = 0; t < n; ++t) {
      for (int k = 0; k < 3; ++k) {
        int a = tri[static_cast<std::size_t>(3 * t + k)];
        int b = tri[static_cast<std::size_t>(3 * t + (k + 1) % 3)];
        if (a > b) std::swap(a, b);
        edgeUse[{a, b}] += 1;
      }
    }
    std::map<int, int> boundaryDegree;
    for (const auto& [edge, uses] : edgeUse) {
      ASSERT_LE(uses, 2) << "case " << caseIndex;
      if (uses == 1) {
        boundaryDegree[edge.first] += 1;
        boundaryDegree[edge.second] += 1;
      }
    }
    for (const auto& [vertex, degree] : boundaryDegree) {
      ASSERT_EQ(degree % 2, 0)
          << "case " << caseIndex << " vertex " << vertex;
    }
  }
}

}  // namespace
}  // namespace pviz::vis
