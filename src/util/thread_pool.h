// A small, dependency-free thread pool with blocked-range parallel loops.
//
// This is PowerViz's stand-in for Intel TBB (which the paper used through
// VTK-m's TBB device adapter).  It provides the three primitives the
// visualization kernels need:
//
//   * parallelFor(begin, end, grain, f)   — f(chunkBegin, chunkEnd)
//   * parallelReduce(begin, end, id, map, combine)
//   * scheduler-wide worker count query (used by the performance model)
//
// Work is divided into fixed chunks handed out from an atomic cursor, so
// imbalanced iterations (e.g. marching-cubes cells with wildly different
// triangle counts) still load-balance across workers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace pviz::util {

/// A persistent pool of worker threads executing blocked-range loops.
///
/// The pool is safe to use from any number of caller threads: concurrent
/// loops are serialized through an admission mutex (one loop owns the
/// workers at a time — the service layer issues characterizations from
/// several request workers).  Nested parallelism executes the inner loop
/// serially on the calling worker (the same policy VTK-m uses for its
/// serial fallback).
class ThreadPool {
 public:
  /// Create a pool with `workers` threads (0 = hardware concurrency).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that participate in a loop (workers + caller).
  unsigned concurrency() const { return static_cast<unsigned>(threads_.size()) + 1; }

  /// Run `body(chunkBegin, chunkEnd)` over [begin, end) in chunks of at
  /// most `grain` iterations.  Blocks until all chunks complete.
  /// Exceptions thrown by `body` are captured and rethrown (first wins).
  ///
  /// The callable is invoked through a single function-pointer thunk per
  /// chunk — no std::function allocation or double indirection on the
  /// dispatch path.
  template <typename Body>
  void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   Body&& body) {
    using Stored = std::remove_reference_t<Body>;
    parallelForImpl(
        begin, end, grain,
        const_cast<void*>(static_cast<const void*>(std::addressof(body))),
        [](void* ctx, std::int64_t b, std::int64_t e) {
          (*static_cast<Stored*>(ctx))(b, e);
        });
  }

  /// The process-wide pool behind the compatibility shims (the
  /// context-free parallelFor overloads and ExecutionContext's default
  /// constructor).  New code should run on an ExecutionContext over an
  /// explicit pool instead; tests pin pool sizes by constructing
  /// `ThreadPool pool(n); ExecutionContext ctx(pool);`.
  static ThreadPool& global();

 private:
  using ChunkInvoker = void (*)(void*, std::int64_t, std::int64_t);

  void parallelForImpl(std::int64_t begin, std::int64_t end,
                       std::int64_t grain, void* ctx, ChunkInvoker invoke);
  void workerLoop();
  void runChunks();

  struct Job {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    void* ctx = nullptr;
    ChunkInvoker invoke = nullptr;
    std::atomic<std::int64_t> cursor{0};
    std::atomic<unsigned> active{0};
  };

  std::vector<std::thread> threads_;
  std::mutex callerMutex_;  // admits one top-level loop at a time
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job* job_ = nullptr;           // guarded by mutex_ for publication
  std::uint64_t epoch_ = 0;      // bumped per job so workers never miss one
  bool stop_ = false;
  std::exception_ptr firstError_;  // guarded by mutex_
  static thread_local bool insideWorker_;
};

}  // namespace pviz::util
