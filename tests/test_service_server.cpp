// End-to-end service tests: a real server on an ephemeral localhost
// port, real TCP clients, concurrent classify requests, backpressure,
// drain-on-stop, and SIGINT drain of the powerviz_serve binary.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/algorithms.h"
#include "service/client.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/error.h"

namespace pviz::service {
namespace {

/// A server config sized for tests: tiny dataset, light rendering, no
/// on-disk cache, ephemeral port.
ServerConfig testConfig() {
  ServerConfig config;
  config.port = 0;
  config.workers = 4;
  config.engine.study.params = core::AlgorithmParams::lightRendering();
  config.engine.study.cachePath.clear();
  config.engine.study.cycles = 2;
  return config;
}

Request classifyRequest(vis::Id size = 12) {
  Request request;
  request.op = Op::Classify;
  request.algorithm = core::Algorithm::Contour;
  request.size = size;
  return request;
}

TEST(ServiceServer, PingRoundTrip) {
  Server server(testConfig());
  server.start();
  ASSERT_GT(server.port(), 0);

  ServiceClient client("127.0.0.1", server.port());
  Request request;
  request.op = Op::Ping;
  const Response response = client.request(request);
  EXPECT_EQ(response.status, "ok");
  EXPECT_EQ(response.op, Op::Ping);
  const Json* pong = response.result.find("pong");
  ASSERT_NE(pong, nullptr);
  EXPECT_TRUE(pong->asBool());

  server.stop();
}

// The ISSUE acceptance test: concurrent classify requests from several
// client threads produce identical results, and a follow-up identical
// request is served from the result cache.
TEST(ServiceServer, ConcurrentClassifyIdenticalResultsAndCacheHit) {
  Server server(testConfig());
  server.start();

  constexpr int kClients = 6;
  std::vector<std::string> payloads(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, &payloads, &errors, c] {
      try {
        ServiceClient client("127.0.0.1", server.port());
        const Response response = client.request(classifyRequest());
        if (response.status != "ok") {
          errors[static_cast<std::size_t>(c)] =
              "status " + response.status + ": " + response.error;
          return;
        }
        payloads[static_cast<std::size_t>(c)] = response.result.dump();
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(c)] = e.what();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(errors[static_cast<std::size_t>(c)], "") << "client " << c;
    EXPECT_FALSE(payloads[static_cast<std::size_t>(c)].empty())
        << "client " << c;
  }
  // All concurrent clients saw the same classification.
  const std::set<std::string> distinct(payloads.begin(), payloads.end());
  EXPECT_EQ(distinct.size(), 1u);

  // A follow-up identical request must be a cache hit.
  ServiceClient follower("127.0.0.1", server.port());
  const Response cachedResponse = follower.request(classifyRequest());
  ASSERT_EQ(cachedResponse.status, "ok");
  EXPECT_TRUE(cachedResponse.cached);
  EXPECT_EQ(cachedResponse.result.dump(), *distinct.begin());
  EXPECT_GE(server.engine().cache().stats().hits, 1u);

  server.stop();
}

TEST(ServiceServer, StatsRequestReportsCounters) {
  Server server(testConfig());
  server.start();

  ServiceClient client("127.0.0.1", server.port());
  client.request(classifyRequest());

  Request statsRequest;
  statsRequest.op = Op::Stats;
  const Response response = client.request(statsRequest);
  ASSERT_EQ(response.status, "ok");
  const Json* ops = response.result.find("ops");
  ASSERT_NE(ops, nullptr);
  const Json* classify = ops->find("classify");
  ASSERT_NE(classify, nullptr);
  EXPECT_EQ(classify->find("requests")->asInt(), 1);
  const Json* cache = response.result.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->find("entries")->asInt(), 1);

  server.stop();
}

TEST(ServiceServer, MalformedLineGetsErrorResponse) {
  Server server(testConfig());
  server.start();

  ServiceClient client("127.0.0.1", server.port());
  const Json bad = Json::parse(client.exchangeLine("this is not json"));
  EXPECT_EQ(bad.find("status")->asString(), "error");
  EXPECT_FALSE(bad.find("error")->asString().empty());

  // Valid JSON, invalid request (unknown op).
  const Json unknownOp =
      Json::parse(client.exchangeLine("{\"op\":\"frobnicate\"}"));
  EXPECT_EQ(unknownOp.find("status")->asString(), "error");

  // The connection stays usable after errors.
  Request ping;
  ping.op = Op::Ping;
  EXPECT_EQ(client.request(ping).status, "ok");

  server.stop();
}

// Queue depth 1 + one worker + slow pings ⇒ the third concurrent
// request must be refused with an `overloaded` response.
TEST(ServiceServer, OverloadedWhenQueueFull) {
  ServerConfig config = testConfig();
  config.workers = 1;
  config.maxQueueDepth = 1;
  Server server(config);
  server.start();

  Request slowPing;
  slowPing.op = Op::Ping;
  slowPing.delayMs = 400;

  std::vector<std::string> statuses(2);
  // Occupy the worker, then the queue slot.
  std::thread first([&] {
    ServiceClient client("127.0.0.1", server.port());
    statuses[0] = client.request(slowPing).status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::thread second([&] {
    ServiceClient client("127.0.0.1", server.port());
    statuses[1] = client.request(slowPing).status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Worker busy, queue full: this one must bounce immediately.
  ServiceClient third("127.0.0.1", server.port());
  Request fastPing;
  fastPing.op = Op::Ping;
  const Response refused = third.request(fastPing);
  EXPECT_EQ(refused.status, "overloaded");

  first.join();
  second.join();
  EXPECT_EQ(statuses[0], "ok");
  EXPECT_EQ(statuses[1], "ok");
  EXPECT_GE(server.metrics().snapshot().overloaded, 1u);

  server.stop();
}

// stop() must drain: a request already queued when stop() begins still
// gets its response before the socket closes.
TEST(ServiceServer, StopDrainsQueuedRequests) {
  ServerConfig config = testConfig();
  config.workers = 1;
  Server server(config);
  server.start();

  Request slowPing;
  slowPing.op = Op::Ping;
  slowPing.delayMs = 300;

  std::string status;
  std::thread inFlight([&] {
    ServiceClient client("127.0.0.1", server.port());
    status = client.request(slowPing).status;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.stop();
  inFlight.join();
  EXPECT_EQ(status, "ok");
  EXPECT_FALSE(server.running());

  // New connections are refused once stopped.
  EXPECT_THROW(ServiceClient("127.0.0.1", server.port()), Error);
}

#ifdef POWERVIZ_SERVE_BIN
// Spawn the real powerviz_serve binary, talk to it over TCP, send
// SIGINT, and require a clean (drained) exit with status 0.
TEST(ServiceServer, ServeBinaryDrainsOnSigint) {
  int outPipe[2];
  ASSERT_EQ(pipe(outPipe), 0);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: stdout → pipe, exec the server on an ephemeral port.
    dup2(outPipe[1], STDOUT_FILENO);
    close(outPipe[0]);
    close(outPipe[1]);
    execl(POWERVIZ_SERVE_BIN, POWERVIZ_SERVE_BIN, "--port", "0", "--light",
          "--cache", "none", "--quiet", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  close(outPipe[1]);

  // Scrape "powerviz_serve listening port=NNNN" from the child's stdout.
  std::string banner;
  char chunk[256];
  int port = 0;
  while (port == 0) {
    const ssize_t n = read(outPipe[0], chunk, sizeof chunk);
    ASSERT_GT(n, 0) << "server exited before printing its port";
    banner.append(chunk, static_cast<std::size_t>(n));
    const std::size_t at = banner.find("port=");
    if (at != std::string::npos &&
        banner.find('\n', at) != std::string::npos) {
      port = std::atoi(banner.c_str() + at + 5);
    }
  }
  ASSERT_GT(port, 0);

  {
    ServiceClient client("127.0.0.1", port);
    Request ping;
    ping.op = Op::Ping;
    EXPECT_EQ(client.request(ping).status, "ok");
  }

  ASSERT_EQ(kill(pid, SIGINT), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  close(outPipe[0]);
}
#endif  // POWERVIZ_SERVE_BIN

}  // namespace
}  // namespace pviz::service
