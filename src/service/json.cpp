#include "service/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace pviz::service {

namespace {

[[noreturn]] void typeError(const char* want, Json::Type got) {
  static const char* names[] = {"null",   "bool",  "number",
                                "string", "array", "object"};
  throw Error(std::string("json: expected ") + want + ", got " +
              names[static_cast<int>(got)]);
}

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through untouched
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double n) {
  PVIZ_REQUIRE(std::isfinite(n), "json: cannot serialize a non-finite number");
  // Integers (the common protocol case) print without an exponent or
  // trailing zeros; everything else round-trips via %.17g.
  if (n == std::floor(n) && std::fabs(n) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", n);
    out += buf;
  }
}

void appendValue(std::string& out, const Json& v) {
  switch (v.type()) {
    case Json::Type::Null: out += "null"; return;
    case Json::Type::Bool: out += v.asBool() ? "true" : "false"; return;
    case Json::Type::Number: appendNumber(out, v.asNumber()); return;
    case Json::Type::String: appendEscaped(out, v.asString()); return;
    case Json::Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& e : v.asArray()) {
        if (!first) out += ',';
        first = false;
        appendValue(out, e);
      }
      out += ']';
      return;
    }
    case Json::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.asObject()) {
        if (!first) out += ',';
        first = false;
        appendEscaped(out, key);
        out += ':';
        appendValue(out, value);
      }
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  Parser(const std::string& text, std::size_t maxDepth)
      : text_(text), maxDepth_(maxDepth) {}

  Json parseDocument() {
    Json value = parseValue();
    skipSpace();
    require(pos_ == text_.size(), "trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }
  void require(bool ok, const char* what) const {
    if (!ok) fail(what);
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_++];
  }
  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  void expectWord(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      require(pos_ < text_.size() && text_[pos_] == *p, "invalid literal");
      ++pos_;
    }
  }

  // RAII depth guard: every container level on the parser's own call
  // stack counts against maxDepth_, so adversarial nesting fails with a
  // parse error long before the process stack is at risk.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > parser_.maxDepth_) {
        parser_.fail("nesting deeper than " +
                     std::to_string(parser_.maxDepth_) + " levels");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    Parser& parser_;
  };

  Json parseValue() {
    skipSpace();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Json(parseString());
      case 't': expectWord("true"); return Json(true);
      case 'f': expectWord("false"); return Json(false);
      case 'n': expectWord("null"); return Json(nullptr);
      default: return parseNumber();
    }
  }

  Json parseObject() {
    const DepthGuard guard(*this);
    take();  // '{'
    Json out = Json::object();
    skipSpace();
    if (peek() == '}') {
      take();
      return out;
    }
    for (;;) {
      skipSpace();
      require(peek() == '"', "expected object key");
      std::string key = parseString();
      skipSpace();
      require(take() == ':', "expected ':' after object key");
      out.set(std::move(key), parseValue());
      skipSpace();
      const char c = take();
      if (c == '}') return out;
      require(c == ',', "expected ',' or '}' in object");
    }
  }

  Json parseArray() {
    const DepthGuard guard(*this);
    take();  // '['
    Json out = Json::array();
    skipSpace();
    if (peek() == ']') {
      take();
      return out;
    }
    for (;;) {
      out.push(parseValue());
      skipSpace();
      const char c = take();
      if (c == ']') return out;
      require(c == ',', "expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    take();  // '"'
    std::string out;
    for (;;) {
      char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20,
                "unescaped control character in string");
        out += c;
        continue;
      }
      c = take();
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs are passed through as two
          // three-byte sequences; the protocol itself is ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    require(pos_ > start, "expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t maxDepth_ = Json::kDefaultMaxDepth;
  std::size_t depth_ = 0;
};

}  // namespace

bool Json::asBool() const {
  if (type_ != Type::Bool) typeError("bool", type_);
  return bool_;
}

double Json::asNumber() const {
  if (type_ != Type::Number) typeError("number", type_);
  return number_;
}

std::int64_t Json::asInt() const {
  return static_cast<std::int64_t>(asNumber());
}

const std::string& Json::asString() const {
  if (type_ != Type::String) typeError("string", type_);
  return string_;
}

const Json::Array& Json::asArray() const {
  if (type_ != Type::Array) typeError("array", type_);
  return array_;
}

const Json::Object& Json::asObject() const {
  if (type_ != Type::Object) typeError("object", type_);
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::Null) type_ = Type::Object;
  if (type_ != Type::Object) typeError("object", type_);
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (type_ == Type::Null) type_ = Type::Array;
  if (type_ != Type::Array) typeError("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

std::string Json::dump() const {
  std::string out;
  appendValue(out, *this);
  return out;
}

Json Json::parse(const std::string& text, std::size_t maxDepth) {
  PVIZ_REQUIRE(maxDepth >= 1, "json: depth bound must be >= 1");
  return Parser(text, maxDepth).parseDocument();
}

}  // namespace pviz::service
