# Empty compiler generated dependencies file for test_weld.
# This may be replaced when dependencies are built.
