// Particle advection — trace massless particles through a steady vector
// field with fourth-order Runge–Kutta, emitting streamlines.
//
// Per the paper: particles are seeded throughout the dataset and advected
// a fixed number of steps through a single time step of the flow;
// particles leaving the bounding box terminate.  Seed count, step length
// and step count are held constant regardless of dataset size (the
// paper's Phase 3 choice, which is what makes this algorithm's IPC
// insensitive to dataset size).
#pragma once

#include <string>

#include "viz/dataset/explicit_mesh.h"
#include "viz/dataset/uniform_grid.h"
#include "viz/worklet/work_profile.h"

namespace pviz::util {
class ExecutionContext;
}  // namespace pviz::util

namespace pviz::vis {

class ParticleAdvectionFilter {
 public:
  struct Result {
    PolylineSet streamlines;
    std::int64_t totalSteps = 0;   ///< RK4 steps actually taken
    std::int64_t terminated = 0;   ///< particles that left the domain
    KernelProfile profile;
  };

  void setSeedCount(Id seeds) {
    PVIZ_REQUIRE(seeds >= 1, "need at least one seed");
    seeds_ = seeds;
  }
  void setMaxSteps(Id steps) {
    PVIZ_REQUIRE(steps >= 1, "need at least one step");
    maxSteps_ = steps;
  }
  void setStepLength(double h) {
    PVIZ_REQUIRE(h > 0.0, "step length must be positive");
    stepLength_ = h;
  }
  void setSeedRngSeed(std::uint64_t s) { rngSeed_ = s; }

  Id seedCount() const { return seeds_; }
  Id maxSteps() const { return maxSteps_; }
  double stepLength() const { return stepLength_; }

  /// Advect through point vector field `fieldName` (3 components).
  Result run(util::ExecutionContext& ctx, const UniformGrid& grid,
             const std::string& fieldName) const;

  /// Compatibility shim: run on a fresh context over the global pool.
  Result run(const UniformGrid& grid, const std::string& fieldName) const;

 private:
  Id seeds_ = 1000;
  Id maxSteps_ = 1000;
  double stepLength_ = 0.001;
  std::uint64_t rngSeed_ = 42;
};

}  // namespace pviz::vis
