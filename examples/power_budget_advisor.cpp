// Power-budget advisor scenario: a job must hold a 65 W average package
// budget while alternating a hydro simulation with a visualization
// routine.  The advisor classifies each candidate visualization
// algorithm and plans the cap split; compare against the naive uniform
// cap.
//
//   $ ./power_budget_advisor
#include <iostream>

#include "core/power_advisor.h"
#include "core/study.h"
#include "sim/cloverleaf.h"
#include "util/table.h"

int main() {
  using namespace pviz;

  // Characterize the simulation side: real hydro steps.
  sim::CloverLeaf clover(24);
  clover.run(10);
  const vis::KernelProfile simKernel =
      core::scaleKernelWork(clover.takeProfile(), 100.0);

  // Characterize three visualization candidates on the current state.
  core::StudyConfig config;
  config.sizes = {24};
  config.params = core::AlgorithmParams::lightRendering();
  core::Study study(config);

  core::PowerAdvisor advisor;
  const double budget = 65.0;

  std::cout << "average package budget: " << budget << " W\n\n";
  util::TextTable table;
  table.setHeader({"Viz algorithm", "Class", "Knee(W)", "Draw(W)", "VizCap",
                   "SimCap", "Speedup vs uniform"});
  for (core::Algorithm algorithm :
       {core::Algorithm::Contour, core::Algorithm::Threshold,
        core::Algorithm::VolumeRendering}) {
    const vis::KernelProfile vizKernel = core::scaleKernelWork(
        study.characterize(algorithm, 24), 100.0);
    const core::Classification cls = advisor.classify(vizKernel);
    const core::BudgetPlan plan =
        advisor.planBudget(simKernel, vizKernel, budget);
    table.addRow({core::algorithmName(algorithm),
                  cls.powerOpportunity ? "opportunity" : "sensitive",
                  util::formatFixed(cls.kneeCapWatts, 0),
                  util::formatFixed(cls.drawAtTdpWatts, 1),
                  util::formatFixed(plan.vizCapWatts, 0),
                  util::formatFixed(plan.simCapWatts, 0),
                  util::formatRatio(plan.speedupVsUniform)});
  }
  table.print(std::cout);
  std::cout << "\npower-opportunity visualizations free budget for the "
               "power-hungry simulation;\na compute-bound visualization "
               "has little to give\n";
  return 0;
}
